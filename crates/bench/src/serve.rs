//! The serving subcommands: `serve`, `submit`, `stats`, `shutdown`,
//! `drain`, `flood` and `raw` — the client/daemon face of the harness
//! (see the `sxd` crate for the protocol itself).
//!
//! Every experiment of the batch CLI is also a servable suite. Each gets
//! an NQS [`Demand`] sized after what the paper says the workload needs:
//! application runs occupy several processors and real memory for
//! simulated minutes, kernels are one-processor sprints.

use std::collections::BTreeMap;
use std::time::Duration;

use ncar_suite::{Json, Registry};
use sxsim::{render_analysis_list, FtraceRow};

use crate::Experiment;
use sxd::cluster::{spawn as spawn_cluster, ClusterConfig};
use sxd::{flood, Client, Demand, FloodConfig, JobEntry, Server, ServerConfig};

/// Default daemon endpoint when `--addr` is not given.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7464";

/// NQS demand for one experiment, sized after the paper's workloads.
fn demand_for(name: &str, solo_seconds: f64) -> Demand {
    match name {
        // Multi-processor application runs: CCM2 scaling, one-year
        // simulations, the ensemble test, MOM, the production mix.
        "fig8" | "table5" | "table6" | "table7" | "multinode" | "prodload" => {
            Demand { procs: 8, memory_bytes: 2 << 30, solo_seconds, bytes_per_cycle_per_proc: 16.0 }
        }
        // I/O and network benchmarks hold a few processors and buffers.
        "pop" | "io" | "hippi" | "network" => {
            Demand { procs: 4, memory_bytes: 1 << 30, solo_seconds, bytes_per_cycle_per_proc: 12.0 }
        }
        // Kernels, accuracy checks and analyses: one processor.
        _ => Demand::light(solo_seconds),
    }
}

/// Simulated solo wall seconds charged per suite (what the paper reports
/// where it reports one; modest placeholders elsewhere).
fn solo_seconds_for(name: &str) -> f64 {
    match name {
        "prodload" => 5608.0, // 93 minutes 28 seconds (§4.6)
        "table5" => 3600.0,   // one-year CCM2 simulations with history I/O
        "table6" => 900.0,    // ensemble test, 8 concurrent copies
        "fig8" | "table7" | "multinode" => 600.0,
        "pop" | "io" | "hippi" | "network" => 120.0,
        _ => 30.0,
    }
}

/// Wrap the batch experiments as servable suites.
pub fn registry(experiments: &[Experiment]) -> Registry<JobEntry> {
    let mut reg = Registry::new();
    for (name, desc, runner) in experiments {
        let runner = *runner;
        reg.register(
            *name,
            JobEntry::new(
                demand_for(name, solo_seconds_for(name)),
                *desc,
                move |_machine, _params| Ok(runner()),
            ),
        );
    }
    reg
}

/// Tiny flag parser: `--key value` pairs plus positionals.
struct Args {
    flags: Vec<(String, String)>,
    positionals: Vec<String>,
}

impl Args {
    fn parse(args: &[String]) -> Result<Args, String> {
        let mut flags = Vec::new();
        let mut positionals = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = it.next().ok_or_else(|| format!("flag --{key} needs a value"))?.clone();
                flags.push((key.to_string(), value));
            } else {
                positionals.push(a.clone());
            }
        }
        Ok(Args { flags, positionals })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key} wants a number, got {v:?}")),
        }
    }

    fn get_f64(&self, key: &str) -> Result<Option<f64>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{key} wants seconds as a number, got {v:?}")),
        }
    }

    fn params(&self) -> BTreeMap<String, String> {
        let mut out = BTreeMap::new();
        for (k, v) in &self.flags {
            if k == "param" {
                match v.split_once('=') {
                    Some((pk, pv)) => out.insert(pk.to_string(), pv.to_string()),
                    None => out.insert(v.clone(), "true".to_string()),
                };
            }
        }
        out
    }

    fn addr(&self) -> String {
        self.get("addr").unwrap_or(DEFAULT_ADDR).to_string()
    }
}

fn fail(detail: &str) -> i32 {
    eprintln!("error: {detail}");
    1
}

/// `ncar-bench serve [--addr A] [--workers N] [--cache-cap N]
/// [--admit-timeout SECS] [--state-dir DIR] [--drain-deadline SECS]
/// [--idle-timeout SECS] [--dispatchers N] [--pipeline-depth K]
/// [--fastpath BOOL] [--cluster N]`
///
/// `--idle-timeout SECS` bounds how long a silent connection may hold a
/// socket before the reactor closes it (counted under `conns.idle_closed`
/// in STATS); `0` disables the bound. `--dispatchers N` sizes the pool
/// that runs decoded frames (`0` auto-sizes from the worker count).
///
/// `--pipeline-depth K` lets each connection keep up to K decoded frames
/// in flight at once (default 1, strictly serial); replies always come
/// back in request order either way. `--fastpath false` disables the
/// reactor-thread fast path (cache hits, STATS, typed errors answered
/// inline), forcing every frame through the dispatcher pool — the knob
/// EXPERIMENTS.md uses for before/after numbers.
///
/// With `--cluster N` (N ≥ 2) the public address is a rendezvous-hash
/// router in front of N shard daemons on ephemeral loopback ports; every
/// other flag configures each member. `--state-dir DIR` becomes the
/// cluster state root (member `i` journals under `DIR/shard-i`).
pub fn cmd_serve(args: &[String], experiments: &[Experiment]) -> i32 {
    let args = match Args::parse(args) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    let mut config = ServerConfig { addr: args.addr(), ..ServerConfig::default() };
    config.workers = match args.get_usize("workers", config.workers) {
        Ok(n) => n,
        Err(e) => return fail(&e),
    };
    config.cache_cap = match args.get_usize("cache-cap", config.cache_cap) {
        Ok(n) => n,
        Err(e) => return fail(&e),
    };
    match args.get_f64("admit-timeout") {
        Ok(Some(secs)) if secs > 0.0 => config.admit_timeout = Duration::from_secs_f64(secs),
        Ok(Some(_)) => return fail("--admit-timeout wants a positive number of seconds"),
        Ok(None) => {}
        Err(e) => return fail(&e),
    }
    // --state-dir turns on the durable journal: results survive restarts,
    // and a drain past its deadline checkpoints stragglers there.
    if let Some(dir) = args.get("state-dir") {
        config.state_dir = Some(std::path::PathBuf::from(dir));
    }
    match args.get_f64("drain-deadline") {
        Ok(Some(secs)) if secs >= 0.0 => config.drain_deadline = Duration::from_secs_f64(secs),
        Ok(Some(_)) => return fail("--drain-deadline wants a non-negative number of seconds"),
        Ok(None) => {}
        Err(e) => return fail(&e),
    }
    match args.get_f64("idle-timeout") {
        Ok(Some(0.0)) => config.idle_timeout = None,
        Ok(Some(secs)) if secs > 0.0 => config.idle_timeout = Some(Duration::from_secs_f64(secs)),
        Ok(Some(_)) => return fail("--idle-timeout wants a non-negative number of seconds"),
        Ok(None) => {}
        Err(e) => return fail(&e),
    }
    config.dispatchers = match args.get_usize("dispatchers", config.dispatchers) {
        Ok(n) => n,
        Err(e) => return fail(&e),
    };
    config.pipeline_depth = match args.get_usize("pipeline-depth", config.pipeline_depth) {
        Ok(0) => return fail("--pipeline-depth wants at least 1"),
        Ok(n) => n,
        Err(e) => return fail(&e),
    };
    match args.get("fastpath") {
        None | Some("true") => {}
        Some("false") => config.fastpath = false,
        Some(_) => return fail("--fastpath wants true or false"),
    }
    let shards = match args.get_usize("cluster", 1) {
        Ok(n) => n,
        Err(e) => return fail(&e),
    };
    if shards > 1 {
        let cluster_config = ClusterConfig {
            shards,
            addr: config.addr.clone(),
            state_dir: config.state_dir.take(),
            server: config,
        };
        let cluster = match spawn_cluster(registry(experiments), cluster_config) {
            Ok(c) => c,
            Err(e) => return fail(&e.to_string()),
        };
        println!("sxd listening on {}", cluster.addr());
        let members: Vec<String> = cluster.member_addrs().iter().map(|a| a.to_string()).collect();
        println!("sxd cluster: {shards} shards on {}", members.join(" "));
        return match cluster.join() {
            Ok(()) => {
                println!("sxd cluster drained; exiting");
                0
            }
            Err(e) => fail(&e.to_string()),
        };
    }
    let server = match Server::bind(registry(experiments), config) {
        Ok(s) => s,
        Err(e) => return fail(&e.to_string()),
    };
    println!("sxd listening on {}", server.local_addr());
    match server.run() {
        Ok(()) => {
            println!("sxd drained; exiting");
            0
        }
        Err(e) => fail(&e.to_string()),
    }
}

/// `ncar-bench submit <suite> [--addr A] [--machine M] [--param k=v]...
/// [--json j] [--show-route true] [--pipeline N]`
///
/// `--show-route true` first asks the endpoint which shard owns the
/// configuration (the cluster `route` verb) and prints the placement
/// before submitting. Against a single daemon the route probe reports
/// that the endpoint is not a router and the submit proceeds anyway.
///
/// `--pipeline N` sends the same submit N times in one pipelined batch —
/// all N frames leave before the first reply is read, and each reply is
/// verified to be the one its request hashes to (strict order). Handy for
/// watching a cold entry warm up: reply 0 says `cached=false`, the rest
/// `cached=true`.
pub fn cmd_submit(args: &[String]) -> i32 {
    let args = match Args::parse(args) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    let Some(suite) = args.positionals.first() else {
        return fail("submit needs a suite name (try `ncar-bench list`)");
    };
    let machine = args.get("machine").unwrap_or("sx4-9.2");
    let mut client = match Client::connect(&args.addr()) {
        Ok(c) => c,
        Err(e) => return fail(&e.to_string()),
    };
    if args.get("show-route") == Some("true") {
        match client.route(suite, machine, &args.params()) {
            Ok(route) => {
                let member = route.get("member").and_then(Json::as_u64).unwrap_or(0);
                let shard = route.get("shard").and_then(Json::as_str).unwrap_or("?");
                let key = route.get("key").and_then(Json::as_str).unwrap_or("?");
                println!("route: member={member} shard={shard} key={key}");
            }
            Err(e) => println!("route: unavailable ({e})"),
        }
    }
    let pipeline = match args.get_usize("pipeline", 1) {
        Ok(n) => n,
        Err(e) => return fail(&e),
    };
    if pipeline > 1 {
        let batch: Vec<_> = (0..pipeline)
            .map(|_| (suite.to_string(), machine.to_string(), args.params()))
            .collect();
        return match client.submit_pipelined(&batch) {
            Ok(subs) => {
                for (i, sub) in subs.iter().enumerate() {
                    if args.get("json") == Some("true") {
                        println!("{}", sub.raw);
                    } else {
                        println!("reply {i}: key={} cached={}", sub.key, sub.cached);
                    }
                }
                0
            }
            Err(e) => fail(&e.to_string()),
        };
    }
    match client.submit(suite, machine, &args.params()) {
        Ok(sub) => {
            if args.get("json") == Some("true") {
                println!("{}", sub.raw);
            } else {
                println!("key={} cached={}", sub.key, sub.cached);
                if let Some(rendered) =
                    sub.result.get("rendered").and_then(ncar_suite::Json::as_str)
                {
                    print!("{rendered}");
                }
            }
            0
        }
        Err(e) => fail(&e.to_string()),
    }
}

/// `ncar-bench stats [--addr A]`
pub fn cmd_stats(args: &[String]) -> i32 {
    let args = match Args::parse(args) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    let mut client = match Client::connect(&args.addr()) {
        Ok(c) => c,
        Err(e) => return fail(&e.to_string()),
    };
    match client.stats() {
        Ok(stats) => {
            println!("{stats}");
            0
        }
        Err(e) => fail(&e.to_string()),
    }
}

/// Render one metrics snapshot the way SUPER-UX renders FTRACE: a stats
/// summary line, the gauges, a per-stage latency analysis list (quantiles
/// in microseconds) and the per-suite simulated-seconds breakdown.
fn render_metrics(m: &Json) -> String {
    let mut out = String::new();
    let stats = m.get("stats").cloned().unwrap_or(Json::Null);
    let n = |k: &str| stats.get(k).and_then(Json::as_u64).unwrap_or(0);
    let reconciled = m.get("reconciled").and_then(Json::as_bool).unwrap_or(false);
    out.push_str(&format!(
        "jobs: accepted={} done={} rejected={} queued={} running={} \
         coalesced={} bad_requests={}  reconciled={}\n",
        n("accepted"),
        n("done"),
        n("rejected"),
        n("queued"),
        n("running"),
        n("coalesced"),
        n("bad_requests"),
        reconciled,
    ));
    let cache = stats.get("cache").cloned().unwrap_or(Json::Null);
    let cn = |k: &str| cache.get(k).and_then(Json::as_u64).unwrap_or(0);
    out.push_str(&format!(
        "cache: hits={} misses={} evictions={} entries={}/{}\n",
        cn("hits"),
        cn("misses"),
        cn("evictions"),
        cn("entries"),
        cn("cap"),
    ));
    if let Some(Json::Obj(gauges)) = m.get("gauges") {
        out.push_str("gauges:");
        for (k, v) in gauges {
            out.push_str(&format!(" {k}={}", v.as_f64().unwrap_or(0.0)));
        }
        out.push('\n');
    }

    if let Some(Json::Obj(latency)) = m.get("latency") {
        let us = |h: &Json, k: &str| h.get(k).and_then(Json::as_f64).unwrap_or(0.0) * 1e6;
        let rows: Vec<FtraceRow> = latency
            .iter()
            .map(|(stage, h)| FtraceRow {
                name: stage.clone(),
                calls: h.get("count").and_then(Json::as_u64).unwrap_or(0),
                seconds: h.get("sum").and_then(Json::as_f64).unwrap_or(0.0),
                extra: vec![us(h, "p50"), us(h, "p90"), us(h, "p99")],
            })
            .collect();
        out.push('\n');
        out.push_str(&render_analysis_list(&["P50(us)", "P90(us)", "P99(us)"], rows));
    }

    if let Some(Json::Obj(suites)) = m.get("suites") {
        if !suites.is_empty() {
            let rows: Vec<FtraceRow> = suites
                .iter()
                .map(|(name, s)| FtraceRow {
                    name: name.clone(),
                    calls: s.get("runs").and_then(Json::as_u64).unwrap_or(0),
                    seconds: s.get("sim_seconds").and_then(Json::as_f64).unwrap_or(0.0),
                    extra: vec![s.get("avg_stretch").and_then(Json::as_f64).unwrap_or(0.0)],
                })
                .collect();
            out.push('\n');
            out.push_str(&render_analysis_list(&["AVG.STRETCH"], rows));
        }
    }
    out
}

/// `ncar-bench metrics [--addr A] [--json true] [--watch SECS]`
pub fn cmd_metrics(args: &[String]) -> i32 {
    let args = match Args::parse(args) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    let watch = match args.get_f64("watch") {
        Ok(w) => w,
        Err(e) => return fail(&e),
    };
    if watch.is_some_and(|w| w <= 0.0) {
        return fail("--watch wants a positive number of seconds");
    }
    let mut client = match Client::connect(&args.addr()) {
        Ok(c) => c,
        Err(e) => return fail(&e.to_string()),
    };
    loop {
        match client.metrics() {
            Ok(m) => {
                if args.get("json") == Some("true") {
                    println!("{m}");
                } else {
                    print!("{}", render_metrics(&m));
                }
            }
            Err(e) => return fail(&e.to_string()),
        }
        match watch {
            None => return 0,
            Some(secs) => {
                println!();
                std::thread::sleep(Duration::from_secs_f64(secs));
            }
        }
    }
}

/// `ncar-bench shutdown [--addr A]`
pub fn cmd_shutdown(args: &[String]) -> i32 {
    let args = match Args::parse(args) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    let mut client = match Client::connect(&args.addr()) {
        Ok(c) => c,
        Err(e) => return fail(&e.to_string()),
    };
    match client.shutdown() {
        Ok(()) => {
            println!("sxd acknowledged shutdown");
            0
        }
        Err(e) => fail(&e.to_string()),
    }
}

/// `ncar-bench drain [--addr A] [--deadline SECS] [--member K]` —
/// graceful drain: the daemon stops admission, gives in-flight jobs the
/// deadline to finish, checkpoints the stragglers to restart specs (when
/// it has a state dir) and exits. Without `--deadline` the server's
/// configured default applies. `--member K` targets a cluster router:
/// only shard K drains, and the router hands its durable keyspace to the
/// ring successors before acknowledging.
pub fn cmd_drain(args: &[String]) -> i32 {
    let args = match Args::parse(args) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    let deadline_ms = match args.get_f64("deadline") {
        Ok(Some(secs)) if secs >= 0.0 => Some((secs * 1000.0) as u64),
        Ok(Some(_)) => return fail("--deadline wants a non-negative number of seconds"),
        Ok(None) => None,
        Err(e) => return fail(&e),
    };
    let member = match args.get("member") {
        None => None,
        Some(v) => match v.parse::<usize>() {
            Ok(m) => Some(m),
            Err(_) => return fail(&format!("--member wants a shard index, got {v:?}")),
        },
    };
    let mut client = match Client::connect(&args.addr()) {
        Ok(c) => c,
        Err(e) => return fail(&e.to_string()),
    };
    let drained = match member {
        Some(m) => client.drain_member(m, deadline_ms),
        None => client.drain(deadline_ms),
    };
    match drained {
        Ok(()) => {
            match member {
                Some(m) => println!("sxd drained member {m}; keyspace handed off"),
                None => println!("sxd acknowledged drain"),
            }
            0
        }
        Err(e) => fail(&e.to_string()),
    }
}

/// `ncar-bench raw <line> [--addr A]` — send one raw frame, print the raw
/// reply. The CI smoke test uses this to feed the daemon garbage.
pub fn cmd_raw(args: &[String]) -> i32 {
    let args = match Args::parse(args) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    let Some(line) = args.positionals.first() else {
        return fail("raw needs the frame to send as an argument");
    };
    let mut client = match Client::connect(&args.addr()) {
        Ok(c) => c,
        Err(e) => return fail(&e.to_string()),
    };
    match client.raw(line) {
        Ok(reply) => {
            println!("{reply}");
            0
        }
        Err(e) => fail(&e.to_string()),
    }
}

/// `ncar-bench flood [--addr A] [--clients N] [--jobs M] [--suite s]...
/// [--pipeline K] [--cluster N]`
///
/// `--pipeline K` makes each client keep K submits in flight per
/// connection (batched writes, strict in-order reply verification); the
/// summary line reports throughput as jobs/s either way.
///
/// With `--cluster N` the flood stands up an ephemeral in-process
/// N-shard cluster (memory-only members, ephemeral ports), aims the load
/// at its router, and tears it down afterwards — a one-command shard-
/// scaling measurement; `--addr` is ignored. Without it the flood targets
/// an already-running endpoint, daemon or router alike.
pub fn cmd_flood(args: &[String], experiments: &[Experiment]) -> i32 {
    let args = match Args::parse(args) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    let clients = match args.get_usize("clients", 8) {
        Ok(n) => n,
        Err(e) => return fail(&e),
    };
    let jobs = match args.get_usize("jobs", 64) {
        Ok(n) => n,
        Err(e) => return fail(&e),
    };
    let shards = match args.get_usize("cluster", 0) {
        Ok(n) => n,
        Err(e) => return fail(&e),
    };
    let pipeline = match args.get_usize("pipeline", 1) {
        Ok(n) => n,
        Err(e) => return fail(&e),
    };
    let mut suites: Vec<String> =
        args.flags.iter().filter(|(k, _)| k == "suite").map(|(_, v)| v.clone()).collect();
    if suites.is_empty() {
        // Fast kernel suites by default so the flood measures the daemon.
        suites = vec!["fig5".into(), "radabs".into(), "table3".into()];
    }
    let cluster = if shards > 0 {
        let cluster_config = ClusterConfig {
            shards,
            addr: "127.0.0.1:0".into(),
            state_dir: None,
            server: ServerConfig::default(),
        };
        match spawn_cluster(registry(experiments), cluster_config) {
            Ok(c) => {
                println!("flood: ephemeral {shards}-shard cluster on {}", c.addr());
                Some(c)
            }
            Err(e) => return fail(&e.to_string()),
        }
    } else {
        None
    };
    let config = FloodConfig {
        addr: cluster.as_ref().map_or_else(|| args.addr(), |c| c.addr().to_string()),
        clients,
        jobs,
        suites,
        machine: args.get("machine").unwrap_or("sx4-9.2").to_string(),
        pipeline,
    };
    let flooded = flood(&config);
    if let Some(cluster) = cluster {
        let down = Client::connect(&config.addr)
            .and_then(|mut c| c.shutdown())
            .and_then(|()| cluster.join());
        if let Err(e) = down {
            return fail(&format!("cluster teardown: {e}"));
        }
    }
    match flooded {
        Ok(outcome) => {
            println!(
                "flood: {}/{} jobs completed in {:.3}s ({:.1} jobs/s, pipeline {}), \
                 {} cached replies; cache {}h/{}m; counters accepted={} done={} rejected={} \
                 queued={} running={} coalesced={} fastpath_hits={} reconciled={}",
                outcome.completed,
                outcome.submitted,
                outcome.wall,
                outcome.jobs_per_sec,
                pipeline.max(1),
                outcome.cached_replies,
                outcome.cache_hits,
                outcome.cache_misses,
                outcome.accepted,
                outcome.done,
                outcome.rejected,
                outcome.queued,
                outcome.running,
                outcome.coalesced,
                outcome.fastpath_hits,
                outcome.reconciled,
            );
            if outcome.ok() {
                println!("flood: all acceptance checks passed");
                0
            } else {
                for p in &outcome.problems {
                    eprintln!("flood problem: {p}");
                }
                1
            }
        }
        Err(e) => fail(&e.to_string()),
    }
}
