//! Kill-and-restart crash tests against the real `ncar-bench serve`
//! binary: SIGKILL mid-service, then — behind the `faults` feature — a
//! crash injected at every registered fault point. After each crash the
//! daemon must come back with no cache corruption (replayed results are
//! byte-identical), no double-counted jobs, and counters that reconcile.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
#[cfg(feature = "faults")]
use std::time::{Duration, Instant};

use ncar_suite::Json;
use sxd::Client;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sxd-crash-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct Daemon {
    child: Child,
    addr: String,
}

/// Spawn the real binary on an ephemeral port, optionally with a fault
/// point armed, and wait for it to report its listening address.
fn spawn_daemon(state_dir: &Path, extra: &[&str], fault: Option<&str>) -> Daemon {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ncar-bench"));
    cmd.arg("serve")
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--state-dir")
        .arg(state_dir)
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    match fault {
        Some(point) => {
            cmd.env("SXD_FAULTPOINT", point);
        }
        None => {
            cmd.env_remove("SXD_FAULTPOINT");
        }
    }
    let mut child = cmd.spawn().expect("spawn ncar-bench serve");
    let stdout = child.stdout.take().unwrap();
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        match lines.next() {
            Some(Ok(line)) => {
                if let Some(a) = line.strip_prefix("sxd listening on ") {
                    break a.to_string();
                }
            }
            _ => panic!("daemon exited before reporting a listening address"),
        }
    };
    // Keep draining stdout so the daemon can never block on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    Daemon { child, addr }
}

fn tagged(tag: &str) -> BTreeMap<String, String> {
    let mut p = BTreeMap::new();
    p.insert("tag".to_string(), tag.to_string());
    p
}

fn assert_reconciled(stats: &Json) {
    let n = |k: &str| stats.get(k).and_then(Json::as_u64).unwrap_or(0);
    assert_eq!(
        n("accepted"),
        n("done") + n("rejected") + n("queued") + n("running"),
        "counters must reconcile: {stats}"
    );
}

#[test]
fn sigkill_then_restart_serves_prior_results_byte_identically() {
    let dir = scratch("sigkill");
    let mut d = spawn_daemon(&dir, &[], None);
    let mut client = Client::connect(&d.addr).unwrap();
    let mut runs = Vec::new();
    for (suite, tag) in [("radabs", "a"), ("table3", "b"), ("radabs", "c")] {
        let sub = client.submit(suite, "sx4-9.2", &tagged(tag)).unwrap();
        assert!(!sub.cached);
        runs.push((suite, tag, sub.raw));
    }
    // SIGKILL: no drain, no compaction — only the write-ahead appends.
    d.child.kill().unwrap();
    d.child.wait().unwrap();

    let mut d = spawn_daemon(&dir, &[], None);
    let mut client = Client::connect(&d.addr).unwrap();
    for (suite, tag, raw) in &runs {
        let sub = client.submit(suite, "sx4-9.2", &tagged(tag)).unwrap();
        assert!(sub.cached, "{suite}/{tag} must be served from the replayed journal");
        assert_eq!(&sub.raw, &raw.replace("\"cached\":false", "\"cached\":true"));
    }
    let stats = client.stats().unwrap();
    let journal = stats.get("journal").expect("journal stats");
    assert_eq!(journal.get("replayed").unwrap().as_u64(), Some(3));
    assert_eq!(journal.get("truncated_bytes").unwrap().as_u64(), Some(0));
    assert_reconciled(&stats);
    client.shutdown().unwrap();
    assert!(d.child.wait().unwrap().success());
    let _ = std::fs::remove_dir_all(&dir);
}

/// An armed `journal.append` IO fault (the `:io` flavour) must degrade
/// durability, not service: the submit still completes and the daemon
/// counts the failed append.
#[cfg(feature = "faults")]
#[test]
fn append_io_fault_degrades_durability_not_service() {
    let dir = scratch("append-io");
    let mut d = spawn_daemon(&dir, &[], Some("journal.append:io"));
    let mut client = Client::connect(&d.addr).unwrap();
    let sub = client.submit("radabs", "sx4-9.2", &tagged("io")).unwrap();
    assert!(!sub.cached);
    // Same boot: served from the in-memory cache despite the failed append.
    assert!(client.submit("radabs", "sx4-9.2", &tagged("io")).unwrap().cached);
    let stats = client.stats().unwrap();
    let io_errors = stats.get("journal").unwrap().get("io_errors").unwrap().as_u64();
    assert_eq!(io_errors, Some(1), "the failed append must be counted");
    assert_reconciled(&stats);
    client.shutdown().unwrap();
    assert!(d.child.wait().unwrap().success());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash at every registered fault point, restart, and audit the
/// recovered state. Each point gets the scenario that actually reaches
/// it; a point this match does not know is a test failure, so the
/// registry and this audit can never drift apart.
#[cfg(feature = "faults")]
#[test]
fn crash_at_every_fault_point_recovers_cleanly() {
    for &point in sxd::faultpoint::FAULT_POINTS {
        match point {
            "journal.append" | "journal.append.torn" => crash_during_append(point),
            "journal.compact.write" | "journal.compact.rename" => crash_during_compaction(point),
            "drain.persist" => crash_during_drain_persist(point),
            other => panic!("fault point {other:?} has no crash scenario in this test"),
        }
    }
}

/// A result completed before the crash must survive it; the result whose
/// append crashed was never acknowledged, so it may simply be recomputed.
#[cfg(feature = "faults")]
fn crash_during_append(point: &str) {
    let dir = scratch(&format!("fault-{}", point.replace('.', "-")));
    // Clean prelude boot: one durable keeper result.
    let mut d = spawn_daemon(&dir, &[], None);
    let mut client = Client::connect(&d.addr).unwrap();
    let keeper = client.submit("radabs", "sx4-9.2", &tagged("keeper")).unwrap();
    client.shutdown().unwrap();
    assert!(d.child.wait().unwrap().success());

    // Faulted boot: the victim submit crashes the daemon mid-append.
    let mut d = spawn_daemon(&dir, &[], Some(point));
    let mut client = Client::connect(&d.addr).unwrap();
    let err = client.submit("radabs", "sx4-9.2", &tagged("victim"));
    assert!(err.is_err(), "{point}: the crash must sever the victim's connection");
    assert!(!d.child.wait().unwrap().success(), "{point}: the daemon must have aborted");

    // Recovery boot: keeper intact and byte-identical, victim recomputable.
    let mut d = spawn_daemon(&dir, &[], None);
    let mut client = Client::connect(&d.addr).unwrap();
    let again = client.submit("radabs", "sx4-9.2", &tagged("keeper")).unwrap();
    assert!(again.cached, "{point}: the pre-crash result must survive");
    assert_eq!(again.raw, keeper.raw.replace("\"cached\":false", "\"cached\":true"));
    let victim = client.submit("radabs", "sx4-9.2", &tagged("victim")).unwrap();
    assert!(!victim.cached, "{point}: the unacknowledged victim was never persisted");
    let stats = client.stats().unwrap();
    let journal = stats.get("journal").unwrap();
    assert_eq!(journal.get("replayed").unwrap().as_u64(), Some(1), "{point}");
    let truncated = journal.get("truncated_bytes").unwrap().as_u64().unwrap();
    if point == "journal.append.torn" {
        assert!(truncated > 0, "{point}: the torn half-record must be truncated, got 0");
    } else {
        assert_eq!(truncated, 0, "{point}: crash fires before any bytes hit the file");
    }
    assert_reconciled(&stats);
    client.shutdown().unwrap();
    assert!(d.child.wait().unwrap().success());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A crash inside compaction (tmp write or the final rename) must leave
/// the pre-compaction journal authoritative: every append replays.
#[cfg(feature = "faults")]
fn crash_during_compaction(point: &str) {
    let dir = scratch(&format!("fault-{}", point.replace('.', "-")));
    // cache-cap 1 arms the compaction trigger at 8 appends; the 8th
    // submit's append trips compaction, which crashes at the fault point.
    let mut d = spawn_daemon(&dir, &["--cache-cap", "1"], Some(point));
    let mut client = Client::connect(&d.addr).unwrap();
    for i in 0..7 {
        let sub = client.submit("radabs", "sx4-9.2", &tagged(&format!("c{i}"))).unwrap();
        assert!(!sub.cached);
    }
    let err = client.submit("radabs", "sx4-9.2", &tagged("c7"));
    assert!(err.is_err(), "{point}: the 8th append must trip the crashing compaction");
    assert!(!d.child.wait().unwrap().success(), "{point}: the daemon must have aborted");

    // Recovery: all 8 appends replay (the 8th hit the journal before its
    // compaction crashed); the stale tmp is discarded, never trusted.
    let mut d = spawn_daemon(&dir, &["--cache-cap", "1"], None);
    let mut client = Client::connect(&d.addr).unwrap();
    let stats = client.stats().unwrap();
    let journal = stats.get("journal").unwrap();
    assert_eq!(journal.get("replayed").unwrap().as_u64(), Some(8), "{point}");
    assert_eq!(journal.get("truncated_bytes").unwrap().as_u64(), Some(0), "{point}");
    // Cap 1 keeps only the most recent replayed entry.
    assert!(client.submit("radabs", "sx4-9.2", &tagged("c7")).unwrap().cached, "{point}");
    assert_reconciled(&client.stats().unwrap());
    client.shutdown().unwrap();
    assert!(d.child.wait().unwrap().success());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A crash while persisting drain checkpoints must not fabricate restart
/// work: the specs never became durable, the straggler's client saw its
/// connection die unacknowledged, and the next boot starts clean.
#[cfg(feature = "faults")]
fn crash_during_drain_persist(point: &str) {
    let dir = scratch("fault-drain-persist");
    let mut d = spawn_daemon(&dir, &[], Some(point));
    let addr = d.addr.clone();
    let straggler = std::thread::spawn(move || {
        let mut c = Client::connect(&addr).unwrap();
        c.submit("fig5", "sx4-9.2", &BTreeMap::new())
    });
    // Wait until the job is observably in flight before draining.
    let mut observer = Client::connect(&d.addr).unwrap();
    let t0 = Instant::now();
    loop {
        let stats = observer.stats().unwrap();
        let n = |k: &str| stats.get(k).and_then(Json::as_u64).unwrap_or(0);
        if n("running") + n("queued") >= 1 {
            break;
        }
        assert!(t0.elapsed() < Duration::from_secs(10), "{point}: job never reached the daemon");
        std::thread::sleep(Duration::from_millis(5));
    }
    // Zero deadline: the running job is a straggler immediately, and
    // persisting its restart spec crashes at the fault point. The drain
    // reply races the abort, so either outcome is acceptable.
    let _ = Client::connect(&d.addr).unwrap().drain(Some(0));
    assert!(straggler.join().unwrap().is_err(), "{point}: the straggler saw the crash");
    assert!(!d.child.wait().unwrap().success(), "{point}: the daemon must have aborted");

    // Recovery: no restart specs were fabricated from the torn persist.
    assert!(sxd::journal::load_restart_specs(&dir).is_empty(), "{point}");
    let mut d = spawn_daemon(&dir, &[], None);
    let mut client = Client::connect(&d.addr).unwrap();
    let sub = client.submit("fig5", "sx4-9.2", &BTreeMap::new()).unwrap();
    assert!(!sub.cached, "{point}: the un-acknowledged job must recompute, not double-count");
    assert_reconciled(&client.stats().unwrap());
    client.shutdown().unwrap();
    assert!(d.child.wait().unwrap().success());
    let _ = std::fs::remove_dir_all(&dir);
}
