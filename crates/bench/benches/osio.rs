//! Wall-clock benches for the SUPER-UX substrate: scheduler throughput,
//! SFS write path, and the PRODLOAD composition (with fixed rates).
//!
//! Plain `fn main` harness (`harness = false`): each case is warmed up,
//! then timed over enough iterations to fill ~200 ms, reporting the mean.

use std::time::Instant;
use superux::prodload::{prodload, CcmRates};
use superux::{JobSpec, Nqs, Sfs};
use sxsim::{presets, Node};

fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    f(); // warm-up
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed().as_millis() < 200 {
        std::hint::black_box(f());
        iters += 1;
    }
    let per = start.elapsed().as_secs_f64() / iters as f64;
    println!("{name:<40} {:>12.3} us/iter  ({iters} iters)", per * 1e6);
}

fn main() {
    let node = Node::new(presets::sx4_benchmarked());

    let jobs: Vec<JobSpec> = (0..64)
        .map(|i| JobSpec {
            name: format!("j{i}"),
            procs: 1 + (i % 8),
            memory_bytes: 128 << 20,
            solo_seconds: 10.0 + i as f64,
            bytes_per_cycle_per_proc: 30.0,
            block: 0,
            after: if i >= 8 { vec![i - 8] } else { vec![] },
        })
        .collect();
    let nqs = Nqs::whole_node(&node);
    bench("nqs/schedule_64_jobs", || nqs.run(&jobs).expect("mix is schedulable"));

    bench("sfs/write_1gb_staged", || {
        let mut fs = Sfs::benchmarked();
        fs.write(0.0, 1 << 30, 64)
    });

    let rates = CcmRates::synthetic();
    bench("prodload/full_composition", || prodload(&node, &rates));
}
