//! Criterion benches for the SUPER-UX substrate: scheduler throughput,
//! SFS write path, and the PRODLOAD composition (with fixed rates).

use criterion::{criterion_group, criterion_main, Criterion};
use superux::prodload::{prodload, CcmRates};
use superux::{JobSpec, Nqs, Sfs};
use sxsim::{presets, Node};

fn bench_nqs(c: &mut Criterion) {
    let node = Node::new(presets::sx4_benchmarked());
    let mut g = c.benchmark_group("nqs");
    g.bench_function("schedule_64_jobs", |b| {
        let jobs: Vec<JobSpec> = (0..64)
            .map(|i| JobSpec {
                name: format!("j{i}"),
                procs: 1 + (i % 8),
                memory_bytes: 128 << 20,
                solo_seconds: 10.0 + i as f64,
                bytes_per_cycle_per_proc: 30.0,
                block: 0,
                after: if i >= 8 { vec![i - 8] } else { vec![] },
            })
            .collect();
        let nqs = Nqs::whole_node(&node);
        b.iter(|| nqs.run(&jobs));
    });
    g.finish();
}

fn bench_sfs(c: &mut Criterion) {
    let mut g = c.benchmark_group("sfs");
    g.bench_function("write_1gb_staged", |b| {
        b.iter(|| {
            let mut fs = Sfs::benchmarked();
            fs.write(0.0, 1 << 30, 64)
        })
    });
    g.finish();
}

fn bench_prodload(c: &mut Criterion) {
    let node = Node::new(presets::sx4_benchmarked());
    let rates = CcmRates::synthetic();
    let mut g = c.benchmark_group("prodload");
    g.sample_size(10);
    g.bench_function("full_composition", |b| b.iter(|| prodload(&node, &rates)));
    g.finish();
}

criterion_group!(benches, bench_nqs, bench_sfs, bench_prodload);
criterion_main!(benches);
