//! Wall-clock benches for the kernel suite: host-native timing of the
//! real Rust computations behind Table 1, Table 3, Figure 5 and §4.4
//! (the simulated-machine numbers come from `ncar-bench`, not from here).
//!
//! Plain `fn main` harness (`harness = false`): each case is warmed up,
//! then timed over enough iterations to fill ~200 ms, reporting the mean.

use ncar_kernels::membw::{run_point, MembwKind};
use ncar_kernels::radabs::radabs_mflops;
use ncar_suite::Instance;
use othersuites::hint::run_hint;
use othersuites::linpack::linpack;
use othersuites::stream::{run_op, StreamOp};
use std::time::Instant;
use sxsim::presets;

fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    f(); // warm-up
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed().as_millis() < 200 {
        std::hint::black_box(f());
        iters += 1;
    }
    let per = start.elapsed().as_secs_f64() / iters as f64;
    println!("{name:<40} {:>12.3} us/iter  ({iters} iters)", per * 1e6);
}

fn main() {
    let m = presets::sx4_benchmarked();
    for kind in [MembwKind::Copy, MembwKind::Ia, MembwKind::Xpose] {
        let inst = match kind {
            MembwKind::Xpose => Instance { n: 128, m: 8 },
            _ => Instance { n: 65_536, m: 4 },
        };
        bench(&format!("fig5_membw/{}/{}", kind.label(), inst.n), || run_point(&m, kind, inst, 1));
    }

    for mach in [presets::sx4_benchmarked(), presets::cray_ymp(), presets::sparc20()] {
        bench(&format!("radabs/{}", mach.name), || radabs_mflops(&mach, 1024, 1));
    }

    bench("table1/hint_sparc20_20k_splits", || run_hint(&presets::sparc20(), 20_000));
    bench("table1/linpack_n100_sx4", || linpack(&presets::sx4_benchmarked(), 100));
    bench("table1/stream_triad_sx4", || {
        run_op(&presets::sx4_benchmarked(), StreamOp::Triad, 200_000)
    });
}
