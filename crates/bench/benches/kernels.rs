//! Criterion benches for the kernel suite: host-native wall clock of the
//! real Rust computations behind Table 1, Table 3, Figure 5 and §4.4
//! (the simulated-machine numbers come from `ncar-bench`, not Criterion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncar_kernels::membw::{run_point, MembwKind};
use ncar_kernels::radabs::radabs_mflops;
use ncar_suite::Instance;
use othersuites::hint::run_hint;
use othersuites::linpack::linpack;
use othersuites::stream::{run_op, StreamOp};
use sxsim::presets;

fn bench_membw(c: &mut Criterion) {
    let m = presets::sx4_benchmarked();
    let mut g = c.benchmark_group("fig5_membw");
    for kind in [MembwKind::Copy, MembwKind::Ia, MembwKind::Xpose] {
        let inst = match kind {
            MembwKind::Xpose => Instance { n: 128, m: 8 },
            _ => Instance { n: 65_536, m: 4 },
        };
        g.bench_with_input(BenchmarkId::new(kind.label(), inst.n), &inst, |b, &inst| {
            b.iter(|| run_point(&m, kind, inst, 1));
        });
    }
    g.finish();
}

fn bench_radabs(c: &mut Criterion) {
    let machines = [presets::sx4_benchmarked(), presets::cray_ymp(), presets::sparc20()];
    let mut g = c.benchmark_group("radabs");
    for m in &machines {
        g.bench_function(m.name.clone(), |b| b.iter(|| radabs_mflops(m, 1024, 1)));
    }
    g.finish();
}

fn bench_table1_suites(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("hint_sparc20_20k_splits", |b| {
        b.iter(|| run_hint(&presets::sparc20(), 20_000))
    });
    g.bench_function("linpack_n100_sx4", |b| b.iter(|| linpack(&presets::sx4_benchmarked(), 100)));
    g.bench_function("stream_triad_sx4", |b| {
        b.iter(|| run_op(&presets::sx4_benchmarked(), StreamOp::Triad, 200_000))
    });
    g.finish();
}

criterion_group!(benches, bench_membw, bench_radabs, bench_table1_suites);
criterion_main!(benches);
