//! Criterion benches for the application models (Figure 8, Tables 5-7,
//! POP): native wall clock of one model step, by resolution and processor
//! count.

use ccm_proxy::{Ccm2Config, Ccm2Proxy, Resolution};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ocean_models::{Mom, MomConfig, Pop, PopConfig};
use sxsim::presets;

fn bench_ccm2_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("ccm2_step");
    g.sample_size(10);
    for procs in [1usize, 8, 32] {
        g.bench_with_input(BenchmarkId::new("T42", procs), &procs, |b, &procs| {
            let mut m =
                Ccm2Proxy::new(Ccm2Config::benchmark(Resolution::T42), presets::sx4_benchmarked());
            m.step(procs);
            b.iter(|| m.step(procs));
        });
    }
    g.finish();
}

fn bench_spectral_transform(c: &mut Criterion) {
    use ccm_proxy::SphericalTransform;
    use sxsim::Vm;
    let mut g = c.benchmark_group("spherical_transform");
    g.sample_size(10);
    for (trunc, nlat, nlon) in [(42usize, 64usize, 128usize), (85, 128, 256)] {
        let t = SphericalTransform::new(trunc, nlat, nlon);
        let grid: Vec<f64> = (0..nlat * nlon).map(|i| ((i * 37) % 101) as f64 / 101.0).collect();
        g.bench_with_input(BenchmarkId::new("analyze", trunc), &grid, |b, grid| {
            b.iter(|| {
                let mut vm = Vm::new(presets::sx4_benchmarked());
                t.analyze(&mut vm, grid)
            })
        });
    }
    g.finish();
}

fn bench_ocean_steps(c: &mut Criterion) {
    let mut g = c.benchmark_group("ocean_step");
    g.sample_size(10);
    g.bench_function("mom_low_res_8p", |b| {
        let mut m = Mom::new(MomConfig::low_resolution(), presets::sx4_benchmarked());
        b.iter(|| m.step(8));
    });
    g.bench_function("pop_two_degree_1p", |b| {
        let mut m = Pop::new(PopConfig::two_degree(), presets::sx4_benchmarked());
        b.iter(|| m.step(1));
    });
    g.finish();
}

criterion_group!(benches, bench_ccm2_step, bench_spectral_transform, bench_ocean_steps);
criterion_main!(benches);
