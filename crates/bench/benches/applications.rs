//! Wall-clock benches for the application models (Figure 8, Tables 5-7,
//! POP): native timing of one model step, by resolution and processor
//! count.
//!
//! Plain `fn main` harness (`harness = false`): each case is warmed up,
//! then timed over enough iterations to fill ~200 ms, reporting the mean.

use ccm_proxy::{Ccm2Config, Ccm2Proxy, Resolution, SphericalTransform};
use ocean_models::{Mom, MomConfig, Pop, PopConfig};
use std::time::Instant;
use sxsim::{presets, Vm};

fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    f(); // warm-up
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed().as_millis() < 200 {
        std::hint::black_box(f());
        iters += 1;
    }
    let per = start.elapsed().as_secs_f64() / iters as f64;
    println!("{name:<40} {:>12.3} us/iter  ({iters} iters)", per * 1e6);
}

fn main() {
    for procs in [1usize, 8, 32] {
        let mut m =
            Ccm2Proxy::new(Ccm2Config::benchmark(Resolution::T42), presets::sx4_benchmarked());
        m.step(procs);
        bench(&format!("ccm2_step/T42/{procs}"), || m.step(procs));
    }

    for (trunc, nlat, nlon) in [(42usize, 64usize, 128usize), (85, 128, 256)] {
        let t = SphericalTransform::new(trunc, nlat, nlon);
        let grid: Vec<f64> = (0..nlat * nlon).map(|i| ((i * 37) % 101) as f64 / 101.0).collect();
        bench(&format!("spherical_transform/analyze/{trunc}"), || {
            let mut vm = Vm::new(presets::sx4_benchmarked());
            t.analyze(&mut vm, &grid)
        });
    }

    let mut mom = Mom::new(MomConfig::low_resolution(), presets::sx4_benchmarked());
    bench("ocean_step/mom_low_res_8p", || mom.step(8));
    let mut pop = Pop::new(PopConfig::two_degree(), presets::sx4_benchmarked());
    bench("ocean_step/pop_two_degree_1p", || pop.step(1));
}
