//! Criterion benches for the FFT pair (Figures 6 and 7): native wall clock
//! of the mixed-radix transform and of the two charged loop orders.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ncar_kernels::fft::{fft, run_fft_point, rfft_spectrum, C64, Direction, LoopOrder};
use sxsim::presets;

fn bench_complex_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("complex_fft");
    for n in [64usize, 240, 1024, 1280] {
        let input: Vec<C64> =
            (0..n).map(|i| C64::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos())).collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &input, |b, input| {
            b.iter(|| {
                let mut x = input.clone();
                fft(&mut x, Direction::Forward);
                x
            })
        });
    }
    g.finish();
}

fn bench_real_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("rfft_spectrum");
    for n in [128usize, 640, 1280] {
        let signal: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &signal, |b, s| {
            b.iter(|| rfft_spectrum(s))
        });
    }
    g.finish();
}

fn bench_loop_orders(c: &mut Criterion) {
    let m = presets::sx4_benchmarked();
    let mut g = c.benchmark_group("fig6_fig7_points");
    g.sample_size(20);
    g.bench_function("rfft_point_n256", |b| {
        b.iter(|| run_fft_point(&m, 256, 100, LoopOrder::AxisFastest))
    });
    g.bench_function("vfft_point_n256_m500", |b| {
        b.iter(|| run_fft_point(&m, 256, 500, LoopOrder::InstanceFastest))
    });
    g.finish();
}

criterion_group!(benches, bench_complex_fft, bench_real_fft, bench_loop_orders);
criterion_main!(benches);
