//! Wall-clock benches for the FFT pair (Figures 6 and 7): native timing
//! of the mixed-radix transform and of the two charged loop orders.
//!
//! Plain `fn main` harness (`harness = false`): each case is warmed up,
//! then timed over enough iterations to fill ~200 ms, reporting the mean.

use ncar_kernels::fft::{fft, rfft_spectrum, run_fft_point, Direction, LoopOrder, C64};
use std::time::Instant;
use sxsim::presets;

fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    f(); // warm-up
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed().as_millis() < 200 {
        std::hint::black_box(f());
        iters += 1;
    }
    let per = start.elapsed().as_secs_f64() / iters as f64;
    println!("{name:<40} {:>12.3} us/iter  ({iters} iters)", per * 1e6);
}

fn main() {
    for n in [64usize, 240, 1024, 1280] {
        let input: Vec<C64> =
            (0..n).map(|i| C64::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos())).collect();
        bench(&format!("complex_fft/{n}"), || {
            let mut x = input.clone();
            fft(&mut x, Direction::Forward);
            x
        });
    }

    for n in [128usize, 640, 1280] {
        let signal: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        bench(&format!("rfft_spectrum/{n}"), || rfft_spectrum(&signal));
    }

    let m = presets::sx4_benchmarked();
    bench("fig6_fig7/rfft_point_n256", || run_fft_point(&m, 256, 100, LoopOrder::AxisFastest));
    bench("fig6_fig7/vfft_point_n256_m500", || {
        run_fft_point(&m, 256, 500, LoopOrder::InstanceFastest)
    });
}
