//! Cost-ledger auditing (feature `audit`).
//!
//! The simulator's credibility rests on its accounting: every simulated
//! second must be the sum of recorded charges, and every report (PROGINF,
//! FTRACE) must partition the same ledger. The auditor cross-checks four
//! invariants over a [`Vm`] that traced its whole life:
//!
//! - **SXC201** — every recorded charge is finite and non-negative (which
//!   also makes the ledger monotone);
//! - **SXC202** — the trace's cost sum equals the lifetime ledger;
//! - **SXC203** — PROGINF's cycle partition (vector + scalar + other)
//!   equals the lifetime cycles;
//! - **SXC204** — FTRACE per-region exclusive totals never exceed the
//!   lifetime ledger (regions are disjoint windows of it).

use crate::report::{Diagnostic, Severity};
use sxsim::{Cost, Ftrace, OpTrace, Vm};

/// Relative tolerance for floating-point cycle comparisons.
const REL_TOL: f64 = 1e-9;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= REL_TOL * a.abs().max(b.abs()).max(1.0)
}

fn err(code: &'static str, region: &str, message: String) -> Diagnostic {
    Diagnostic {
        severity: Severity::Error,
        code,
        region: region.to_string(),
        message,
        hint: "the timing model and its reports disagree — a charge path is \
               double-counting or bypassing the ledger"
            .to_string(),
    }
}

/// Audit a [`Vm`]'s ledger against the trace of its whole life (tracing
/// must have been enabled before the first charge, or SXC202 will fire
/// spuriously).
pub fn audit_vm(vm: &Vm, trace: &OpTrace) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // SXC201: each event's cost is finite and non-negative.
    let mut sum = Cost::ZERO;
    for (i, ev) in trace.events().iter().enumerate() {
        let c = ev.cost();
        if !c.cycles.is_finite()
            || c.cycles < 0.0
            || !c.cray_flops.is_finite()
            || c.cray_flops < 0.0
        {
            out.push(err(
                "SXC201",
                "(trace)",
                format!("event {i} charged a non-finite or negative cost: {c:?}"),
            ));
        }
        sum.add(c);
    }

    // SXC202: trace sum == lifetime ledger.
    let life = vm.lifetime_cost();
    if !close(sum.cycles, life.cycles) || sum.flops != life.flops || sum.bytes != life.bytes {
        out.push(err(
            "SXC202",
            "(trace)",
            format!(
                "trace sums to {:.3} cycles / {} flops / {} bytes but the lifetime ledger \
                 holds {:.3} / {} / {}",
                sum.cycles, sum.flops, sum.bytes, life.cycles, life.flops, life.bytes
            ),
        ));
    }

    // SXC203: PROGINF's partition covers the ledger exactly.
    let s = vm.stats();
    let partition = s.vector_cycles + s.scalar_cycles + s.other_cycles;
    if !close(partition, life.cycles) {
        out.push(err(
            "SXC203",
            "(proginf)",
            format!(
                "vector {:.3} + scalar {:.3} + other {:.3} = {partition:.3} cycles, but the \
                 lifetime ledger holds {:.3}",
                s.vector_cycles, s.scalar_cycles, s.other_cycles, life.cycles
            ),
        ));
    }

    out
}

/// Audit FTRACE region totals against the [`Vm`] they were collected on.
pub fn audit_ftrace(vm: &Vm, ft: &Ftrace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let life = vm.lifetime_cost().cycles;
    let regions: f64 = ft.regions().values().map(|r| r.cost.cycles).sum();
    if regions > life * (1.0 + REL_TOL) + REL_TOL {
        out.push(err(
            "SXC204",
            "(ftrace)",
            format!(
                "exclusive region totals sum to {regions:.3} cycles, more than the lifetime \
                 ledger's {life:.3}"
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxsim::{presets, Ftrace, LocalityPattern, Vm};

    fn traced_vm() -> Vm {
        let mut vm = Vm::new(presets::sx4_benchmarked());
        vm.start_trace();
        vm
    }

    #[test]
    fn healthy_vm_audits_clean() {
        let mut vm = traced_vm();
        let mut ft = Ftrace::new();
        let a = vec![1.0f64; 10_000];
        let mut b = vec![0.0f64; 10_000];
        ft.region("copy", &mut vm, |vm| vm.copy(&mut b, &a));
        ft.region("mixed", &mut vm, |vm| {
            vm.sqrt(&mut b, &a);
            vm.charge_scalar_loop(500, 2.0, 2.0, 1.0, LocalityPattern::Streaming);
            vm.charge(Cost::cycles(123.0));
        });
        let trace = vm.take_trace().unwrap();
        assert!(audit_vm(&vm, &trace).is_empty());
        assert!(audit_ftrace(&vm, &ft).is_empty());
    }

    #[test]
    fn truncated_trace_fails_the_sum_check() {
        let mut vm = Vm::new(presets::sx4_benchmarked());
        let a = vec![1.0f64; 1000];
        let mut b = vec![0.0f64; 1000];
        vm.copy(&mut b, &a); // charged before tracing begins
        vm.start_trace();
        vm.copy(&mut b, &a);
        let trace = vm.take_trace().unwrap();
        let ds = audit_vm(&vm, &trace);
        assert!(ds.iter().any(|d| d.code == "SXC202"), "{ds:?}");
    }

    #[test]
    fn audit_catches_an_out_of_band_charge() {
        // A charge made through a second Vm (same trace spliced in) leaves
        // the audited Vm's ledger short relative to the trace.
        let mut vm = traced_vm();
        let a = vec![1.0f64; 1000];
        let mut b = vec![0.0f64; 1000];
        vm.copy(&mut b, &a);
        let mut other = traced_vm();
        other.copy(&mut b, &a);
        other.copy(&mut b, &a);
        let foreign = other.take_trace().unwrap();
        let ds = audit_vm(&vm, &foreign);
        assert!(ds.iter().any(|d| d.code == "SXC202"), "{ds:?}");
    }

    #[test]
    fn empty_vm_is_clean() {
        let mut vm = traced_vm();
        let trace = vm.take_trace().unwrap();
        assert!(audit_vm(&vm, &trace).is_empty());
    }
}
