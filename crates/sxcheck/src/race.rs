//! Simulated-race detection for multi-processor regions.
//!
//! The simulator's parallel regions ([`sxsim::Region`]) time per-processor
//! ledgers, but nothing in the timing model checks that the processors'
//! memory accesses were actually safe. This module supplies that check: a
//! parallel kernel declares each processor's reads and writes (array name +
//! element range), the communications-register locks it held while making
//! them, and the barriers that separate phases. Two accesses race when they
//! touch overlapping elements of the same array from different processors
//! in the same barrier epoch, at least one is a write, and no common
//! SpinLock ordered them — the classic lockset discipline, with SX-4
//! barriers (store-add through the communications registers) advancing the
//! epoch.

use crate::report::{Diagnostic, Severity};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// A communications register identified by (set, register) — the same
/// addressing [`sxsim::CommRegisters`] uses, where set `procs` is the OS
/// set.
pub type LockId = (usize, usize);

#[derive(Debug, Clone)]
struct AccessRec {
    proc: usize,
    array: String,
    range: Range<usize>,
    write: bool,
    epoch: u64,
    locks: BTreeSet<LockId>,
}

/// Collects per-processor access sets and reports unordered conflicts.
#[derive(Debug, Default)]
pub struct RaceChecker {
    epoch: u64,
    held: BTreeMap<usize, BTreeSet<LockId>>,
    accesses: Vec<AccessRec>,
}

impl RaceChecker {
    pub fn new() -> RaceChecker {
        RaceChecker::default()
    }

    /// Processor `proc` acquired the lock built on communications register
    /// `lock` (e.g. via [`sxsim::SpinLock::try_lock`]).
    pub fn lock(&mut self, proc: usize, lock: LockId) {
        self.held.entry(proc).or_default().insert(lock);
    }

    /// Processor `proc` released the lock.
    pub fn unlock(&mut self, proc: usize, lock: LockId) {
        if let Some(set) = self.held.get_mut(&proc) {
            set.remove(&lock);
        }
    }

    /// All processors passed a barrier: accesses before and after cannot
    /// race (the counting barrier through the communications registers is a
    /// full ordering point).
    pub fn barrier(&mut self) {
        self.epoch += 1;
    }

    /// Processor `proc` read `array[range]`.
    pub fn read(&mut self, proc: usize, array: &str, range: Range<usize>) {
        self.access(proc, array, range, false);
    }

    /// Processor `proc` wrote `array[range]`.
    pub fn write(&mut self, proc: usize, array: &str, range: Range<usize>) {
        self.access(proc, array, range, true);
    }

    fn access(&mut self, proc: usize, array: &str, range: Range<usize>, write: bool) {
        let locks = self.held.get(&proc).cloned().unwrap_or_default();
        self.accesses.push(AccessRec {
            proc,
            array: array.to_string(),
            range,
            write,
            epoch: self.epoch,
            locks,
        });
    }

    /// Report every unordered conflicting pair, deduplicated to one finding
    /// per (array, processor pair, epoch).
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        let mut seen: BTreeSet<(String, usize, usize, u64)> = BTreeSet::new();
        let mut out = Vec::new();
        for (i, a) in self.accesses.iter().enumerate() {
            for b in &self.accesses[i + 1..] {
                if a.proc == b.proc
                    || a.epoch != b.epoch
                    || a.array != b.array
                    || !(a.write || b.write)
                    || a.range.start >= b.range.end
                    || b.range.start >= a.range.end
                    || a.locks.intersection(&b.locks).next().is_some()
                {
                    continue;
                }
                let (p, q) = (a.proc.min(b.proc), a.proc.max(b.proc));
                if !seen.insert((a.array.clone(), p, q, a.epoch)) {
                    continue;
                }
                let lo = a.range.start.max(b.range.start);
                let hi = a.range.end.min(b.range.end);
                let kind = match (a.write, b.write) {
                    (true, true) => "write/write",
                    _ => "read/write",
                };
                out.push(Diagnostic {
                    severity: Severity::Error,
                    code: "SXC101",
                    region: a.array.clone(),
                    message: format!(
                        "{kind} race: processors {p} and {q} touch elements {lo}..{hi} in \
                         barrier epoch {} with no common lock",
                        a.epoch
                    ),
                    hint: "guard the shared range with a communications-register SpinLock, \
                           or separate the phases with a store-add counting barrier"
                        .to_string(),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlocked_overlapping_writes_race() {
        let mut rc = RaceChecker::new();
        rc.write(0, "acc", 0..1);
        rc.write(1, "acc", 0..1);
        let ds = rc.diagnostics();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, "SXC101");
        assert!(ds[0].message.contains("write/write"), "{}", ds[0].message);
    }

    #[test]
    fn common_lock_orders_the_accesses() {
        let mut rc = RaceChecker::new();
        let lock = (32, 0);
        rc.lock(0, lock);
        rc.write(0, "acc", 0..1);
        rc.unlock(0, lock);
        rc.lock(1, lock);
        rc.write(1, "acc", 0..1);
        rc.unlock(1, lock);
        assert!(rc.diagnostics().is_empty());
    }

    #[test]
    fn different_locks_do_not_order() {
        let mut rc = RaceChecker::new();
        rc.lock(0, (0, 0));
        rc.write(0, "acc", 0..1);
        rc.unlock(0, (0, 0));
        rc.lock(1, (1, 0));
        rc.write(1, "acc", 0..1);
        rc.unlock(1, (1, 0));
        assert_eq!(rc.diagnostics().len(), 1);
    }

    #[test]
    fn barrier_separates_epochs() {
        let mut rc = RaceChecker::new();
        rc.write(0, "field", 0..100);
        rc.barrier();
        rc.read(1, "field", 0..100);
        assert!(rc.diagnostics().is_empty());
    }

    #[test]
    fn disjoint_ranges_do_not_race() {
        let mut rc = RaceChecker::new();
        rc.write(0, "field", 0..50);
        rc.write(1, "field", 50..100);
        assert!(rc.diagnostics().is_empty());
    }

    #[test]
    fn concurrent_reads_are_fine() {
        let mut rc = RaceChecker::new();
        rc.read(0, "table", 0..100);
        rc.read(1, "table", 0..100);
        rc.read(2, "table", 0..100);
        assert!(rc.diagnostics().is_empty());
    }

    #[test]
    fn read_write_overlap_races() {
        let mut rc = RaceChecker::new();
        rc.read(0, "field", 0..100);
        rc.write(1, "field", 90..110);
        let ds = rc.diagnostics();
        assert_eq!(ds.len(), 1);
        assert!(ds[0].message.contains("elements 90..100"), "{}", ds[0].message);
    }

    #[test]
    fn lock_released_and_reacquired_across_a_barrier_still_orders() {
        // Edge case: processor 0 drops the lock before the barrier and
        // processor 1 re-acquires it after. The accesses sit in different
        // epochs, so the barrier alone already orders them — the verdict
        // must be "no race" regardless of how lockset state is carried
        // across the epoch boundary.
        let mut rc = RaceChecker::new();
        let lock = (32, 0);
        rc.lock(0, lock);
        rc.write(0, "acc", 0..1);
        rc.unlock(0, lock);
        rc.barrier();
        rc.lock(1, lock);
        rc.write(1, "acc", 0..1);
        rc.unlock(1, lock);
        assert!(rc.diagnostics().is_empty());
    }

    #[test]
    fn lock_held_across_a_barrier_does_not_leak_into_the_next_epoch_conflict() {
        // Edge case: processor 0 holds its lock *through* the barrier and
        // writes again in the new epoch; processor 1 writes the same range
        // in that new epoch with no lock at all. Intended verdict: the
        // new-epoch pair has no common lock, so it races — holding a lock
        // nobody else takes is not an ordering.
        let mut rc = RaceChecker::new();
        let lock = (32, 0);
        rc.lock(0, lock);
        rc.write(0, "acc", 0..1);
        rc.barrier();
        rc.write(0, "acc", 0..1); // still holding `lock`
        rc.write(1, "acc", 0..1); // lock-free writer, same epoch
        rc.unlock(0, lock);
        let ds = rc.diagnostics();
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert!(ds[0].message.contains("epoch 1"), "{}", ds[0].message);
    }

    #[test]
    fn two_lock_writer_overlapping_single_lock_writer_is_ordered_by_the_common_lock() {
        // Edge case: processor 0 writes holding {A, B}; processor 1 writes
        // holding only {B}. The locksets differ, but their intersection is
        // non-empty — B orders the pair, so the intended verdict is clean.
        let mut rc = RaceChecker::new();
        let (a, b) = ((32, 0), (32, 1));
        rc.lock(0, a);
        rc.lock(0, b);
        rc.write(0, "acc", 0..4);
        rc.unlock(0, b);
        rc.unlock(0, a);
        rc.lock(1, b);
        rc.write(1, "acc", 0..4);
        rc.unlock(1, b);
        assert!(rc.diagnostics().is_empty());
    }

    #[test]
    fn two_lock_writer_with_disjoint_lockset_still_races() {
        // Counterpart: processor 0 holds {A, B}, processor 1 holds {C}.
        // More locks is not more safety when none of them is shared.
        let mut rc = RaceChecker::new();
        rc.lock(0, (32, 0));
        rc.lock(0, (32, 1));
        rc.write(0, "acc", 0..4);
        rc.unlock(0, (32, 1));
        rc.unlock(0, (32, 0));
        rc.lock(1, (32, 2));
        rc.write(1, "acc", 0..4);
        rc.unlock(1, (32, 2));
        let ds = rc.diagnostics();
        assert_eq!(ds.len(), 1);
        assert!(ds[0].message.contains("no common lock"), "{}", ds[0].message);
    }

    #[test]
    fn dedup_one_finding_per_pair() {
        let mut rc = RaceChecker::new();
        for i in 0..10 {
            rc.write(0, "acc", i..i + 1);
            rc.write(1, "acc", i..i + 1);
        }
        assert_eq!(rc.diagnostics().len(), 1, "one finding per (array, pair, epoch)");
    }
}
