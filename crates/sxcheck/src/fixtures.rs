//! Seeded-pathology fixtures.
//!
//! Each fixture runs a small, fully deterministic scenario on the
//! simulator and returns its `sxcheck` report. The pathological ones
//! exist to prove the checker catches what it claims to catch — the bench
//! CLI's `check` subcommand fails loudly if they come back clean — and the
//! clean ones prove it stays quiet on healthy code.

use crate::race::RaceChecker;
use crate::report::Report;
use crate::vlint::VectorLinter;
use ncar_suite::par::lockreg::LockObservations;
use sxsim::commreg::{access_cost, CommRegisters};
use sxsim::{presets, Ftrace, SpinLock, Vm};

/// One fixture: a named scenario, its report, and whether the scenario is
/// a seeded pathology (so its findings are expected).
#[derive(Debug)]
pub struct Fixture {
    pub name: &'static str,
    /// Lint codes this fixture must produce; empty for clean fixtures.
    pub expect: &'static [&'static str],
    pub report: Report,
}

impl Fixture {
    /// True when the report contains exactly the expected situation: every
    /// expected code present, and no findings at all for clean fixtures.
    pub fn satisfied(&self) -> bool {
        if self.expect.is_empty() {
            return self.report.is_empty();
        }
        self.expect.iter().all(|c| self.report.has_code(c))
    }
}

/// Run every fixture against the benchmarked SX-4.
pub fn run_all() -> Vec<Fixture> {
    vec![
        stride128_copy(),
        unlocked_accumulator(),
        locked_accumulator(),
        clean_copy(),
        bank_pressure(),
        reload_reduction(),
        short_strip_remainder(),
        inverted_locks(),
        guard_across_io(),
        lock_hierarchy_clean(),
    ]
}

fn lint_vm(vm: &mut Vm) -> Report {
    let model = vm.model().clone();
    let trace = vm.take_trace().expect("fixture Vms trace from birth");
    let mut linter = VectorLinter::new();
    trace.replay(&mut linter);
    let mut report = Report::new();
    report.extend(linter.diagnostics(&model));
    report
}

/// A copy loop marching through memory at stride 128: with 1024 banks,
/// every access lands on one of 8 banks and the stream crawls. This is the
/// classic power-of-two leading-dimension mistake of §2.2.
pub fn stride128_copy() -> Fixture {
    let mut vm = Vm::new(presets::sx4_benchmarked());
    vm.start_trace();
    let mut ft = Ftrace::new();
    let n = 8_192usize;
    let src = vec![1.0f64; n * 128];
    let mut dst = vec![0.0f64; n * 128];
    ft.region("stride128-copy", &mut vm, |vm| {
        vm.copy_strided(&mut dst, 128, &src, 128, n);
    });
    // The single bad stride also drags the region's aggregate strided
    // efficiency below the SXC006 pressure bar.
    Fixture { name: "stride128-copy", expect: &["SXC004", "SXC006"], report: lint_vm(&mut vm) }
}

/// Four processors bump a shared accumulator with no lock and no barrier:
/// every pair of increments is an unordered write/write conflict.
pub fn unlocked_accumulator() -> Fixture {
    let mut rc = RaceChecker::new();
    for proc in 0..4 {
        rc.read(proc, "acc", 0..1);
        rc.write(proc, "acc", 0..1);
    }
    let mut report = Report::new();
    report.extend(rc.diagnostics());
    Fixture { name: "unlocked-accumulator", expect: &["SXC101"], report }
}

/// The same accumulator guarded by a real communications-register
/// SpinLock: each processor acquires, updates, releases — and charges the
/// register accesses to its ledger, as a real SX-4 task would.
pub fn locked_accumulator() -> Fixture {
    let mut vm = Vm::new(presets::sx4_benchmarked());
    let mut regs = CommRegisters::new(4);
    let mut rc = RaceChecker::new();
    // The lock lives in OS-set register 0: set index `procs` == 4.
    let lock_id = (4usize, 0usize);
    let mut acc = 0.0f64;
    for proc in 0..4 {
        let mut lock = SpinLock::new(&mut regs.os_set, 0);
        assert!(lock.try_lock(), "uncontended acquire");
        vm.charge(access_cost());
        rc.lock(proc, lock_id);
        rc.read(proc, "acc", 0..1);
        acc += 1.0;
        rc.write(proc, "acc", 0..1);
        lock.unlock();
        vm.charge(access_cost());
        rc.unlock(proc, lock_id);
    }
    assert_eq!(acc, 4.0);
    let mut report = Report::new();
    report.extend(rc.diagnostics());
    Fixture { name: "locked-accumulator", expect: &[], report }
}

/// A healthy long unit-stride kernel: nothing to report.
pub fn clean_copy() -> Fixture {
    let mut vm = Vm::new(presets::sx4_benchmarked());
    vm.start_trace();
    let mut ft = Ftrace::new();
    let a = vec![1.0f64; 100_000];
    let b = vec![2.0f64; 100_000];
    let mut c = vec![0.0f64; 100_000];
    let mut d = vec![0.0f64; 100_000];
    ft.region("clean-copy", &mut vm, |vm| {
        vm.copy(&mut c, &a);
        vm.add(&mut c, &a, &b);
        vm.fma(&mut d, &a, &b, &c);
    });
    Fixture { name: "clean-copy", expect: &[], report: lint_vm(&mut vm) }
}

/// Many individually modest power-of-two strides: none moves enough to
/// trip SXC004 on its own, but together the region's strided traffic runs
/// at a quarter of the achievable rate.
pub fn bank_pressure() -> Fixture {
    let mut vm = Vm::new(presets::sx4_benchmarked());
    vm.start_trace();
    let mut ft = Ftrace::new();
    let n = 1_500usize;
    ft.region("bank-pressure", &mut vm, |vm| {
        for &stride in &[64usize, 128, 256, 512] {
            let src = vec![1.0f64; n * stride];
            let mut dst = vec![0.0f64; n * stride];
            vm.copy_strided(&mut dst, stride, &src, stride, n);
        }
    });
    Fixture { name: "bank-pressure", expect: &["SXC006"], report: lint_vm(&mut vm) }
}

/// The same reduction re-reads its operand stream every iteration with
/// nothing written in between — memory traffic a common-subexpression
/// pass (or a hoisted scalar) would eliminate.
pub fn reload_reduction() -> Fixture {
    let mut vm = Vm::new(presets::sx4_benchmarked());
    vm.start_trace();
    let mut ft = Ftrace::new();
    let a: Vec<f64> = (0..6_000).map(|i| i as f64 * 0.5).collect();
    ft.region("reload-reduction", &mut vm, |vm| {
        for _ in 0..4 {
            vm.sum(&a);
        }
    });
    Fixture { name: "reload-reduction", expect: &["SXC007"], report: lint_vm(&mut vm) }
}

/// A loop count sitting just above four full vector strips: every pass
/// pays a fifth startup charge for a 16-element remainder.
pub fn short_strip_remainder() -> Fixture {
    let mut vm = Vm::new(presets::sx4_benchmarked());
    vm.start_trace();
    let mut ft = Ftrace::new();
    let n = 256 * 4 + 16;
    let a = vec![1.0f64; n];
    let b = vec![2.0f64; n];
    let mut c = vec![0.0f64; n];
    ft.region("short-strip", &mut vm, |vm| {
        for _ in 0..20 {
            vm.add(&mut c, &a, &b);
        }
    });
    Fixture { name: "short-strip", expect: &["SXC008"], report: lint_vm(&mut vm) }
}

fn lock_report(obs: &LockObservations) -> Report {
    let mut report = Report::new();
    report.extend(crate::lockgraph::analyze(obs));
    report
}

/// Two threads take the same pair of locks in opposite orders — the
/// canonical ABBA deadlock. Observations are synthesized directly (the
/// global registry is process-wide and would cross-pollute parallel
/// tests).
pub fn inverted_locks() -> Fixture {
    let mut obs = LockObservations::new();
    obs.record_stack(&["sxd.cache", "sxd.journal"]);
    obs.record_stack(&["sxd.journal", "sxd.cache"]);
    Fixture { name: "inverted-locks", expect: &["SXC301"], report: lock_report(&obs) }
}

/// A guard held across a journal fsync: every thread wanting the cache
/// lock waits out the disk.
pub fn guard_across_io() -> Fixture {
    let mut obs = LockObservations::new();
    obs.record_crossing("sxd.journal.append", "sxd.cache");
    Fixture { name: "guard-across-io", expect: &["SXC302"], report: lock_report(&obs) }
}

/// A consistent lock hierarchy (every path takes `inflight`, then
/// `cache`, then `journal` in that order): nothing to report.
pub fn lock_hierarchy_clean() -> Fixture {
    let mut obs = LockObservations::new();
    obs.record_stack(&["sxd.inflight", "sxd.cache"]);
    obs.record_stack(&["sxd.inflight", "sxd.cache", "sxd.journal"]);
    obs.record_stack(&["sxd.cache", "sxd.journal"]);
    Fixture { name: "lock-hierarchy-clean", expect: &[], report: lock_report(&obs) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pathologies_are_caught_and_clean_fixtures_stay_clean() {
        for mut f in run_all() {
            assert!(
                f.satisfied(),
                "fixture {} unsatisfied; report:\n{}",
                f.name,
                f.report.render()
            );
        }
    }

    #[test]
    fn stride_fixture_names_the_region() {
        let mut f = stride128_copy();
        let d = f.report.diagnostics().iter().find(|d| d.code == "SXC004").unwrap();
        assert_eq!(d.region, "stride128-copy");
    }

    #[test]
    fn lock_fixtures_name_their_sites() {
        let mut f = inverted_locks();
        let r = f.report.render();
        assert!(r.contains("sxd.cache"), "{r}");
        let mut g = guard_across_io();
        assert!(g.report.render().contains("sxd.journal.append"));
    }

    #[test]
    fn fixture_reports_are_byte_identical_across_runs() {
        let once: Vec<String> = run_all().iter_mut().map(|f| f.report.render()).collect();
        let twice: Vec<String> = run_all().iter_mut().map(|f| f.report.render()).collect();
        assert_eq!(once, twice);
    }
}
