//! Lock-order hazard analysis over recorded acquisition graphs.
//!
//! The input is a [`LockObservations`] snapshot from
//! [`ncar_suite::par::lockreg`]: ordering edges ("some thread acquired `b`
//! while holding `a`") and blocking-IO crossings ("`a` was held across
//! `journal.append`"). Two analyses run over it:
//!
//! - **SXC301 — potential deadlock.** The ordering edges form a directed
//!   graph; if two (or more) sites sit on a directed cycle, two threads
//!   can acquire them in opposite orders and wait on each other forever.
//!   Every strongly-connected component with a cycle is reported once,
//!   with a concrete minimal cycle and the example acquisition stacks that
//!   produced its edges.
//! - **SXC302 — guard held across blocking IO.** A lock held across a
//!   file write or fsync turns one slow disk into a convoy: every thread
//!   that wants the lock waits out the IO. Crossings are pre-filtered by
//!   the recorder's `allowed` list (the lock that *guards* the IO resource
//!   is exempt by design), so every crossing that reaches the analyzer is
//!   a finding.
//!
//! Reports are deterministic: the observation snapshot is sorted, SCC
//! discovery iterates nodes in sorted order, and the minimal cycle is
//! found by BFS from the lexicographically smallest site.

use crate::report::{Diagnostic, Severity};
use ncar_suite::par::lockreg::LockObservations;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Run both lock analyses over a snapshot.
pub fn analyze(obs: &LockObservations) -> Vec<Diagnostic> {
    let mut out = cycles(obs);
    out.extend(io_crossings(obs));
    out
}

/// SXC301: report each strongly-connected component that contains a cycle.
fn cycles(obs: &LockObservations) -> Vec<Diagnostic> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in &obs.edges {
        if e.from != e.to {
            adj.entry(&e.from).or_default().insert(&e.to);
            adj.entry(&e.to).or_default();
        }
    }
    let mut out = Vec::new();
    for scc in strongly_connected(&adj) {
        if scc.len() < 2 {
            continue; // self-edges are dropped above, so no 1-node cycles
        }
        let start = scc[0]; // lexicographically smallest: sccs are sorted
        let cycle = minimal_cycle(&adj, &scc, start);
        let path = cycle.join("` -> `");
        let stacks: Vec<String> = cycle
            .windows(2)
            .filter_map(|w| {
                obs.edges
                    .iter()
                    .find(|e| e.from == w[0] && e.to == w[1])
                    .map(|e| format!("[{}]", e.stack.join(" -> ")))
            })
            .collect();
        out.push(Diagnostic {
            severity: Severity::Error,
            code: "SXC301",
            region: start.to_string(),
            message: format!(
                "potential deadlock: lock acquisition cycle `{path}` \
                 (example stacks: {})",
                stacks.join(", ")
            ),
            hint: "impose one global acquisition order across these sites and release \
                   the outer lock before taking the inner one on every path"
                .to_string(),
        });
    }
    out
}

/// SXC302: every crossing that survived the recorder's allowed list.
fn io_crossings(obs: &LockObservations) -> Vec<Diagnostic> {
    obs.io_crossings
        .iter()
        .map(|c| Diagnostic {
            severity: Severity::Warning,
            code: "SXC302",
            region: c.lock.clone(),
            message: format!(
                "lock `{}` held across blocking IO point `{}` ({} crossing{})",
                c.lock,
                c.io_point,
                c.count,
                if c.count == 1 { "" } else { "s" }
            ),
            hint: "move the IO outside the critical section (copy what it needs under \
                   the lock, write after release), or register the lock as the IO's \
                   designated guard if the coupling is by design"
                .to_string(),
        })
        .collect()
}

/// Tarjan's strongly-connected components, iterative, visiting nodes and
/// successors in sorted order so component membership *and* component
/// order are deterministic. Each returned component is sorted.
fn strongly_connected<'a>(adj: &BTreeMap<&'a str, BTreeSet<&'a str>>) -> Vec<Vec<&'a str>> {
    struct State<'a> {
        index: BTreeMap<&'a str, usize>,
        low: BTreeMap<&'a str, usize>,
        on_stack: BTreeSet<&'a str>,
        stack: Vec<&'a str>,
        next: usize,
        sccs: Vec<Vec<&'a str>>,
    }
    /// One explicit DFS frame: the node and how many successors were tried.
    type Frame<'a> = (&'a str, Vec<&'a str>, usize);

    fn visit<'a>(
        adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
        st: &mut State<'a>,
        frames: &mut Vec<Frame<'a>>,
        v: &'a str,
    ) {
        st.index.insert(v, st.next);
        st.low.insert(v, st.next);
        st.next += 1;
        st.stack.push(v);
        st.on_stack.insert(v);
        let succs: Vec<&str> = adj.get(v).map(|s| s.iter().copied().collect()).unwrap_or_default();
        frames.push((v, succs, 0));
    }

    let mut st = State {
        index: BTreeMap::new(),
        low: BTreeMap::new(),
        on_stack: BTreeSet::new(),
        stack: Vec::new(),
        next: 0,
        sccs: Vec::new(),
    };
    for &root in adj.keys() {
        if st.index.contains_key(root) {
            continue;
        }
        let mut frames: Vec<Frame> = Vec::new();
        visit(adj, &mut st, &mut frames, root);
        while !frames.is_empty() {
            let top = frames.len() - 1;
            let (v, next) = {
                let (v, succs, i) = &mut frames[top];
                if *i < succs.len() {
                    let w = succs[*i];
                    *i += 1;
                    (*v, Some(w))
                } else {
                    (*v, None)
                }
            };
            match next {
                Some(w) if !st.index.contains_key(w) => visit(adj, &mut st, &mut frames, w),
                Some(w) => {
                    if st.on_stack.contains(w) {
                        let lw = st.index[w];
                        let lv = st.low.get_mut(v).expect("visited");
                        *lv = (*lv).min(lw);
                    }
                }
                None => {
                    frames.pop();
                    if st.low[v] == st.index[v] {
                        let mut comp = Vec::new();
                        while let Some(w) = st.stack.pop() {
                            st.on_stack.remove(w);
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        st.sccs.push(comp);
                    }
                    if let Some((p, _, _)) = frames.last() {
                        let lv = st.low[v];
                        let lp = st.low.get_mut(p).expect("visited");
                        *lp = (*lp).min(lv);
                    }
                }
            }
        }
    }
    st.sccs.sort();
    st.sccs
}

/// Shortest cycle through `start` that stays inside `scc`, as a closed
/// path (`start` appears first and last). BFS, sorted successor order.
fn minimal_cycle<'a>(
    adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    scc: &[&'a str],
    start: &'a str,
) -> Vec<&'a str> {
    let members: BTreeSet<&str> = scc.iter().copied().collect();
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue: VecDeque<&str> = VecDeque::new();
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        if let Some(succs) = adj.get(v) {
            for &w in succs {
                if w == start {
                    // Close the cycle: walk back from v to start.
                    let mut path = vec![start];
                    let mut node = v;
                    let mut rev = Vec::new();
                    while node != start {
                        rev.push(node);
                        node = prev[node];
                    }
                    path.extend(rev.into_iter().rev());
                    path.push(start);
                    return path;
                }
                if members.contains(w) && !prev.contains_key(w) && w != start {
                    prev.insert(w, v);
                    queue.push_back(w);
                }
            }
        }
    }
    vec![start, start] // unreachable for a true SCC, but total
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncar_suite::par::lockreg::LockObservations;

    fn obs_with_stacks(stacks: &[&[&str]]) -> LockObservations {
        let mut obs = LockObservations::new();
        for s in stacks {
            obs.record_stack(s);
        }
        obs
    }

    #[test]
    fn inverted_two_lock_order_is_a_cycle() {
        let obs = obs_with_stacks(&[&["a", "b"], &["b", "a"]]);
        let ds = analyze(&obs);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, "SXC301");
        assert_eq!(ds[0].severity, Severity::Error);
        assert!(ds[0].message.contains("`a` -> `b` -> `a`"), "{}", ds[0].message);
    }

    #[test]
    fn consistent_hierarchy_is_clean() {
        let obs = obs_with_stacks(&[&["a", "b"], &["a", "c"], &["b", "c"], &["a", "b", "c"]]);
        assert!(analyze(&obs).is_empty());
    }

    #[test]
    fn three_party_rotation_is_one_cycle() {
        // a->b, b->c, c->a: classic dining-philosophers rotation.
        let obs = obs_with_stacks(&[&["a", "b"], &["b", "c"], &["c", "a"]]);
        let ds = analyze(&obs);
        assert_eq!(ds.len(), 1, "one finding per strongly-connected component");
        assert!(ds[0].message.contains("`a` -> `b` -> `c` -> `a`"), "{}", ds[0].message);
    }

    #[test]
    fn two_independent_inversions_are_two_findings() {
        let obs = obs_with_stacks(&[&["a", "b"], &["b", "a"], &["x", "y"], &["y", "x"]]);
        let ds = analyze(&obs);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds[0].region, "a");
        assert_eq!(ds[1].region, "x");
    }

    #[test]
    fn io_crossing_is_a_warning_keyed_to_the_lock() {
        let mut obs = LockObservations::new();
        obs.record_crossing("journal.append", "cache");
        obs.record_crossing("journal.append", "cache");
        let ds = analyze(&obs);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, "SXC302");
        assert_eq!(ds[0].severity, Severity::Warning);
        assert_eq!(ds[0].region, "cache");
        assert!(ds[0].message.contains("2 crossings"), "{}", ds[0].message);
    }

    #[test]
    fn analysis_is_deterministic_across_runs() {
        let build = || {
            let mut obs = obs_with_stacks(&[&["b", "a"], &["a", "b"], &["c", "d"]]);
            obs.record_crossing("io", "c");
            analyze(&obs)
        };
        assert_eq!(build(), build());
    }
}
