//! # sxcheck — static hazard analysis for the simulated SX-4
//!
//! The simulator ([`sxsim`]) charges every operation an analytic cost; this
//! crate consumes the op streams a tracing [`Vm`](sxsim::Vm) records and
//! turns them into deterministic diagnostics:
//!
//! - **[`vlint`]** — vectorization lints per FTRACE region: short average
//!   vector length (SXC001), low vector-operation ratio (SXC002),
//!   gather/scatter-dominated traffic (SXC003), power-of-two strides
//!   colliding on the banked memory (SXC004), and Amdahl warnings when too
//!   much of a region is scalar or overhead (SXC005);
//! - **[`race`]** — a simulated-race detector over per-processor access
//!   sets: overlapping writes in the same barrier epoch with no common
//!   communications-register lock are reported as SXC101 errors;
//! - **[`lockgraph`]** — lock-order analysis over [`ncar_suite::par::lockreg`]
//!   observations: acquisition-order cycles are potential deadlocks
//!   (SXC301) and guards held across blocking IO are convoy hazards
//!   (SXC302);
//! - **[`baseline`]** — a suppression file (`sxcheck.baseline`) so CI can
//!   deny *new* findings without first driving known ones to zero;
//! - **`audit`** (feature `audit`) — a cost-ledger auditor that
//!   cross-checks the trace sum, the PROGINF cycle partition and FTRACE
//!   region totals against the lifetime ledger (SXC201–SXC204);
//! - **[`fixtures`]** — seeded pathologies (a stride-128 copy, an unlocked
//!   shared accumulator) that must be flagged, plus clean controls that
//!   must not be.
//!
//! Reports are byte-identical across runs on the same input: aggregation
//! uses ordered maps, rendering sorts findings, and nothing reads a clock.
//!
//! ## Example
//!
//! ```
//! use sxsim::{presets, Vm};
//!
//! let mut vm = Vm::new(presets::sx4_benchmarked());
//! vm.start_trace();
//! let n = 8_192;
//! let src = vec![1.0f64; n * 128];
//! let mut dst = vec![0.0f64; n * 128];
//! vm.copy_strided(&mut dst, 128, &src, 128, n); // power-of-two stride!
//! let model = vm.model().clone();
//! let trace = vm.take_trace().unwrap();
//! let mut report = sxcheck::check_trace(&model, &trace);
//! assert!(report.has_code("SXC004"));
//! println!("{}", report.render());
//! ```

pub mod baseline;
pub mod fixtures;
pub mod lockgraph;
pub mod race;
pub mod report;
pub mod vlint;

#[cfg(feature = "audit")]
pub mod audit;

pub use baseline::Baseline;
pub use race::RaceChecker;
pub use report::{Diagnostic, Report, Severity};
pub use vlint::VectorLinter;

use sxsim::{MachineModel, OpTrace};

/// Run the vectorization lints over a recorded trace — the one-call entry
/// point for "what would an SX-4 performance engineer say about this run".
pub fn check_trace(model: &MachineModel, trace: &OpTrace) -> Report {
    let mut linter = VectorLinter::new();
    trace.replay(&mut linter);
    let mut report = Report::new();
    report.extend(linter.diagnostics(model));
    report
}
