//! Finding suppression baseline for the gating CI surface.
//!
//! `ncar-bench check --matrix` runs every machine preset against the stock
//! kernels and wants to *deny new findings* — but some presets legitimately
//! trip lints today (a Y-MP has fewer banks than an SX-4, so strides that
//! are fine on one collide on the other). Freezing those as "known" is what
//! this file format is for: each line of `sxcheck.baseline` names one
//! accepted finding as
//!
//! ```text
//! <machine-key> <code> <region>
//! ```
//!
//! e.g. `ymp SXC004 gather-probe`. `#` starts a comment; blank lines are
//! ignored; the region field may contain spaces (it is the rest of the
//! line). A finding that matches a baseline line is reported but does not
//! gate; a finding with no line is *new* and fails `--deny-warnings`.

use crate::report::Diagnostic;
use std::collections::BTreeSet;

/// A parsed suppression baseline: a set of (machine, code, region) keys.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeSet<(String, String, String)>,
}

/// A malformed baseline line: its 1-based line number and content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineError {
    pub line: usize,
    pub content: String,
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "baseline line {}: expected `<machine> <code> <region>`, got {:?}",
            self.line, self.content
        )
    }
}

/// Split off the first whitespace-delimited token; the remainder is
/// trimmed. Robust to runs of spaces or tabs between fields.
fn split_token(s: &str) -> (&str, &str) {
    let s = s.trim();
    match s.find(char::is_whitespace) {
        Some(i) => (&s[..i], s[i..].trim_start()),
        None => (s, ""),
    }
}

impl Baseline {
    /// An empty baseline: nothing is suppressed.
    pub fn empty() -> Baseline {
        Baseline::default()
    }

    /// Parse the `sxcheck.baseline` format. Fails on the first line that
    /// is neither blank, a comment, nor three whitespace-separated fields.
    pub fn parse(text: &str) -> Result<Baseline, BaselineError> {
        let mut entries = BTreeSet::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (machine, rest) = split_token(line);
            let (code, region) = split_token(rest);
            if machine.is_empty() || code.is_empty() || region.is_empty() {
                return Err(BaselineError { line: i + 1, content: raw.to_string() });
            }
            entries.insert((machine.to_string(), code.to_string(), region.to_string()));
        }
        Ok(Baseline { entries })
    }

    /// Number of suppression entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Is this (machine, diagnostic) pair an accepted, known finding?
    pub fn is_suppressed(&self, machine: &str, d: &Diagnostic) -> bool {
        self.entries.contains(&(machine.to_string(), d.code.to_string(), d.region.clone()))
    }

    /// Render a diagnostic as the baseline line that would suppress it —
    /// what the CI failure message tells the operator to add.
    pub fn line_for(machine: &str, d: &Diagnostic) -> String {
        format!("{} {} {}", machine, d.code, d.region)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Severity;

    fn diag(code: &'static str, region: &str) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            code,
            region: region.to_string(),
            message: String::new(),
            hint: String::new(),
        }
    }

    #[test]
    fn parses_comments_blanks_and_entries() {
        let text = "# known findings\n\nymp SXC004 gather-probe\n  sx4-9.2 SXC003 gather-probe  \n";
        let b = Baseline::parse(text).unwrap();
        assert_eq!(b.len(), 2);
        assert!(b.is_suppressed("ymp", &diag("SXC004", "gather-probe")));
        assert!(b.is_suppressed("sx4-9.2", &diag("SXC003", "gather-probe")));
        assert!(!b.is_suppressed("j90", &diag("SXC004", "gather-probe")));
        assert!(!b.is_suppressed("ymp", &diag("SXC004", "xpose")));
    }

    #[test]
    fn region_may_contain_spaces() {
        let b = Baseline::parse("ymp SXC005 region with spaces\n").unwrap();
        assert!(b.is_suppressed("ymp", &diag("SXC005", "region with spaces")));
    }

    #[test]
    fn malformed_line_is_an_error_with_position() {
        let err = Baseline::parse("ymp SXC004 ok\nonly-two fields-here\n").unwrap_err();
        // splitn(3) yields two fields for the second line -> error at line 2.
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn line_for_round_trips_through_parse() {
        let d = diag("SXC006", "pressure");
        let line = Baseline::line_for("j90", &d);
        let b = Baseline::parse(&line).unwrap();
        assert!(b.is_suppressed("j90", &d));
    }

    #[test]
    fn empty_baseline_suppresses_nothing() {
        let b = Baseline::empty();
        assert!(b.is_empty());
        assert!(!b.is_suppressed("sx4-9.2", &diag("SXC001", "x")));
    }
}
