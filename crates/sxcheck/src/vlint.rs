//! Vectorization lints over a recorded op stream.
//!
//! The [`VectorLinter`] is a [`Recorder`]: replay an [`OpTrace`] through it
//! and it aggregates per-FTRACE-region statistics, then judges each region
//! against the performance folklore of the paper — short vector lengths
//! (§4.3: why RFFT loses to VFFT), low vector-operation ratios (Amdahl on a
//! 16:1 vector:scalar machine), gather/scatter dominance, and power-of-two
//! strides colliding on the banked memory (§2.2).
//!
//! [`OpTrace`]: sxsim::OpTrace

use crate::report::{Diagnostic, Severity};
use std::collections::BTreeMap;
use sxsim::timing::Access;
use sxsim::{MachineModel, Recorder, TraceEvent};

/// Events outside any FTRACE region are attributed to this pseudo-region.
pub const TOPLEVEL: &str = "(outside regions)";

/// Minimum average vector length before SXC001 stays quiet.
pub const SHORT_AVL: f64 = 64.0;
/// Vector ops a region must issue before average length is judged.
pub const MIN_OPS_FOR_AVL: u64 = 16;
/// Vector-operation ratio (%) below which SXC002 fires.
pub const MIN_VRATIO_PCT: f64 = 90.0;
/// Elements a region must process before its ratio is judged.
pub const MIN_ELEMENTS: u64 = 10_000;
/// Fraction of stream elements through gather/scatter that triggers SXC003.
pub const INDEXED_FRACTION: f64 = 0.30;
/// Elements a stride must move before it is judged for bank conflicts.
pub const MIN_STRIDE_ELEMS: u64 = 4_096;
/// Bank-conflict ratio (efficiency relative to the generic non-unit-stride
/// baseline) below which SXC004 fires.
pub const CONFLICT_RATIO: f64 = 0.90;
/// Fraction of region cycles outside vector work that triggers SXC005.
pub const SCALAR_FRACTION: f64 = 0.25;
/// Cycles a region must cost before its scalar fraction is judged.
pub const MIN_REGION_CYCLES: f64 = 10_000.0;

/// Per-region aggregates accumulated during replay.
#[derive(Debug, Clone, Default)]
struct RegionAgg {
    vector_ops: u64,
    vector_elements: u64,
    short_vector_ops: u64,
    /// Elements moved per access stream (`n` per load/store of each op).
    stream_elements: u64,
    /// Of those, elements through gather/scatter hardware.
    indexed_elements: u64,
    /// Elements moved at each stride > 2 (where conflicts are possible).
    stride_elements: BTreeMap<usize, u64>,
    vector_cycles: f64,
    scalar_cycles: f64,
    other_cycles: f64,
    scalar_iters: u64,
}

/// Aggregates an op stream into per-region statistics and emits
/// vectorization lints.
#[derive(Debug, Default)]
pub struct VectorLinter {
    regions: BTreeMap<String, RegionAgg>,
    open: Option<String>,
}

impl VectorLinter {
    pub fn new() -> VectorLinter {
        VectorLinter::default()
    }

    fn agg(&mut self) -> &mut RegionAgg {
        let key = self.open.as_deref().unwrap_or(TOPLEVEL).to_string();
        self.regions.entry(key).or_default()
    }

    /// Judge every region seen so far against `model`. Vector-specific
    /// lints (SXC001–SXC004) only apply to vector machines.
    pub fn diagnostics(&self, model: &MachineModel) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let wpc = model.memory.port_words_per_cycle();
        for (name, a) in &self.regions {
            let diag = |code, message, hint: String| Diagnostic {
                severity: Severity::Warning,
                code,
                region: name.clone(),
                message,
                hint,
            };

            if model.is_vector() {
                // SXC001: short average vector length.
                if a.vector_ops >= MIN_OPS_FOR_AVL {
                    let avl = a.vector_elements as f64 / a.vector_ops as f64;
                    if avl < SHORT_AVL {
                        out.push(diag(
                            "SXC001",
                            format!(
                                "average vector length {avl:.1} over {} vector ops (threshold {SHORT_AVL})",
                                a.vector_ops
                            ),
                            "restructure loops so the vectorized axis is the long one \
                             (the VFFT-vs-RFFT transformation of §4.3)"
                                .to_string(),
                        ));
                    }
                }

                // SXC002: low vector-operation ratio.
                let total_ops = a.vector_elements + a.scalar_iters;
                if total_ops >= MIN_ELEMENTS {
                    let ratio = 100.0 * a.vector_elements as f64 / total_ops as f64;
                    if ratio < MIN_VRATIO_PCT {
                        out.push(diag(
                            "SXC002",
                            format!(
                                "vector operation ratio {ratio:.1}% over {total_ops} operations \
                                 (threshold {MIN_VRATIO_PCT}%)"
                            ),
                            "vectorize the residual scalar loops; on a machine with a 16:1 \
                             vector:scalar speed ratio, 90% vectorization yields only ~6x"
                                .to_string(),
                        ));
                    }
                }

                // SXC003: gather/scatter-dominated traffic.
                if a.stream_elements >= MIN_ELEMENTS {
                    let frac = a.indexed_elements as f64 / a.stream_elements as f64;
                    if frac > INDEXED_FRACTION {
                        out.push(diag(
                            "SXC003",
                            format!(
                                "{:.0}% of stream elements go through gather/scatter \
                                 (threshold {:.0}%)",
                                100.0 * frac,
                                100.0 * INDEXED_FRACTION
                            ),
                            "list-vector hardware sustains a fraction of the contiguous port \
                             rate; reorder data to recover stride access where possible"
                                .to_string(),
                        ));
                    }
                }

                // SXC004: strides colliding on the banked memory.
                for (&stride, &elems) in &a.stride_elements {
                    if elems < MIN_STRIDE_ELEMS {
                        continue;
                    }
                    let eff = model.memory.stride_efficiency(stride, wpc);
                    let base = model.memory.nonunit_stride_factor;
                    let conflict = if base > 0.0 { eff / base } else { 1.0 };
                    if conflict < CONFLICT_RATIO {
                        let banks = model.memory.banks;
                        let distinct = banks / gcd(stride, banks);
                        out.push(diag(
                            "SXC004",
                            format!(
                                "stride {stride} touches only {distinct} of {banks} banks \
                                 ({elems} elements at {:.0}% of the achievable non-unit-stride rate)",
                                100.0 * conflict
                            ),
                            format!(
                                "pad the leading dimension so the stride is odd \
                                 (e.g. {}), restoring all {banks} banks",
                                stride + 1
                            ),
                        ));
                    }
                }
            }

            // SXC005: Amdahl — too much of the region is not vector work.
            let total = a.vector_cycles + a.scalar_cycles + a.other_cycles;
            if total >= MIN_REGION_CYCLES {
                let nonvec = (a.scalar_cycles + a.other_cycles) / total;
                if nonvec > SCALAR_FRACTION {
                    let cap = 1.0 / nonvec;
                    out.push(diag(
                        "SXC005",
                        format!(
                            "{:.0}% of the region's {total:.0} cycles are scalar or overhead \
                             (threshold {:.0}%)",
                            100.0 * nonvec,
                            100.0 * SCALAR_FRACTION
                        ),
                        format!(
                            "Amdahl caps any vector/parallel speedup of this region at {cap:.1}x"
                        ),
                    ));
                }
            }
        }
        out
    }
}

impl Recorder for VectorLinter {
    fn record(&mut self, ev: &TraceEvent) {
        match ev {
            TraceEvent::EnterRegion { name } => self.open = Some(name.clone()),
            TraceEvent::ExitRegion { .. } => self.open = None,
            TraceEvent::VecOp { n, loads, stores, cost, .. } => {
                let n = *n;
                let a = self.agg();
                a.vector_ops += 1;
                a.vector_elements += n as u64;
                if (n as f64) < SHORT_AVL {
                    a.short_vector_ops += 1;
                }
                a.vector_cycles += cost.cycles;
                for acc in loads.iter().chain(stores.iter()) {
                    a.stream_elements += n as u64;
                    match acc {
                        Access::Indexed => a.indexed_elements += n as u64,
                        Access::Stride(s) if *s > 2 => {
                            *a.stride_elements.entry(*s).or_insert(0) += n as u64;
                        }
                        _ => {}
                    }
                }
            }
            TraceEvent::ScalarLoop { iters, cost } => {
                let a = self.agg();
                a.scalar_iters += *iters as u64;
                a.scalar_cycles += cost.cycles;
            }
            TraceEvent::Intrinsic { n, cost, .. } => {
                let a = self.agg();
                a.vector_ops += 1;
                a.vector_elements += *n as u64;
                a.vector_cycles += cost.cycles;
            }
            TraceEvent::Charge { cost } => {
                self.agg().other_cycles += cost.cycles;
            }
        }
    }
}

/// Greatest common divisor (sxsim's is private to its crate).
pub(crate) fn gcd(a: usize, b: usize) -> usize {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxsim::{presets, Ftrace, Vm};

    fn traced_vm() -> Vm {
        let mut vm = Vm::new(presets::sx4_benchmarked());
        vm.start_trace();
        vm
    }

    fn lints(vm: &mut Vm) -> Vec<Diagnostic> {
        let model = vm.model().clone();
        let trace = vm.take_trace().expect("tracing was on");
        let mut linter = VectorLinter::new();
        trace.replay(&mut linter);
        linter.diagnostics(&model)
    }

    #[test]
    fn clean_unit_stride_work_has_no_findings() {
        let mut vm = traced_vm();
        let a = vec![1.0f64; 100_000];
        let b = vec![2.0f64; 100_000];
        let mut c = vec![0.0f64; 100_000];
        vm.add(&mut c, &a, &b);
        vm.fma(&mut c, &a, &b, &a);
        assert!(lints(&mut vm).is_empty());
    }

    #[test]
    fn short_vectors_flagged() {
        let mut vm = traced_vm();
        let a = vec![1.0f64; 8];
        let mut b = vec![0.0f64; 8];
        for _ in 0..100 {
            vm.copy(&mut b, &a);
        }
        let ds = lints(&mut vm);
        assert!(ds.iter().any(|d| d.code == "SXC001"), "{ds:?}");
    }

    #[test]
    fn power_of_two_stride_flagged_with_bank_counts() {
        let mut vm = traced_vm();
        let n = 8_192usize;
        let src = vec![1.0f64; n * 128];
        let mut dst = vec![0.0f64; n * 128];
        vm.copy_strided(&mut dst, 128, &src, 128, n);
        let ds = lints(&mut vm);
        let d = ds.iter().find(|d| d.code == "SXC004").expect("bank-conflict lint");
        assert!(d.message.contains("8 of 1024 banks"), "{}", d.message);
        assert!(d.hint.contains("odd"), "{}", d.hint);
    }

    #[test]
    fn odd_stride_not_flagged_as_conflict() {
        let mut vm = traced_vm();
        let n = 8_192usize;
        let src = vec![1.0f64; n * 129];
        let mut dst = vec![0.0f64; n * 129];
        vm.copy_strided(&mut dst, 129, &src, 129, n);
        let ds = lints(&mut vm);
        assert!(!ds.iter().any(|d| d.code == "SXC004"), "{ds:?}");
    }

    #[test]
    fn gather_dominated_region_flagged() {
        let mut vm = traced_vm();
        let n = 50_000usize;
        let src: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let idx: Vec<usize> = (0..n).rev().collect();
        let mut dst = vec![0.0f64; n];
        vm.gather(&mut dst, &src, &idx);
        let ds = lints(&mut vm);
        assert!(ds.iter().any(|d| d.code == "SXC003"), "{ds:?}");
    }

    #[test]
    fn scalar_heavy_region_gets_amdahl_warning() {
        let mut vm = traced_vm();
        let mut ft = Ftrace::new();
        let a = vec![1.0f64; 1000];
        let mut b = vec![0.0f64; 1000];
        ft.region("physics", &mut vm, |vm| {
            vm.copy(&mut b, &a);
            vm.charge_scalar_loop(60_000, 2.0, 2.0, 1.0, sxsim::LocalityPattern::Streaming);
        });
        let ds = lints(&mut vm);
        let d = ds.iter().find(|d| d.code == "SXC005").expect("Amdahl warning");
        assert_eq!(d.region, "physics");
        // The scalar ratio also trips SXC002 in the same region.
        assert!(ds.iter().any(|d| d.code == "SXC002"), "{ds:?}");
    }

    #[test]
    fn findings_attribute_to_their_region() {
        let mut vm = traced_vm();
        let mut ft = Ftrace::new();
        let n = 8_192usize;
        let src = vec![1.0f64; n * 128];
        let mut dst = vec![0.0f64; n * 128];
        let long = vec![1.0f64; 100_000];
        let mut out = vec![0.0f64; 100_000];
        ft.region("bad-stride", &mut vm, |vm| vm.copy_strided(&mut dst, 128, &src, 128, n));
        ft.region("clean", &mut vm, |vm| vm.copy(&mut out, &long));
        let ds = lints(&mut vm);
        let bad: Vec<_> = ds.iter().filter(|d| d.code == "SXC004").collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].region, "bad-stride");
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(128, 1024), 128);
        assert_eq!(gcd(129, 1024), 1);
        assert_eq!(gcd(1000, 1024), 8);
    }
}
