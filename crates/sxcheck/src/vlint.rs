//! Vectorization lints over a recorded op stream.
//!
//! The [`VectorLinter`] is a [`Recorder`]: replay an [`OpTrace`] through it
//! and it aggregates per-FTRACE-region statistics, then judges each region
//! against the performance folklore of the paper — short vector lengths
//! (§4.3: why RFFT loses to VFFT), low vector-operation ratios (Amdahl on a
//! 16:1 vector:scalar machine), gather/scatter dominance, and power-of-two
//! strides colliding on the banked memory (§2.2).
//!
//! PR 6 adds three dataflow lints: aggregate bank-occupancy pressure when
//! a region's *combined* strided traffic runs well below the achievable
//! non-unit-stride rate even though no single stride crosses the SXC004
//! bar (SXC006); reloads of an identical operand stream with no
//! intervening write — a common-subexpression-elimination opportunity on
//! a machine where the memory port is the scarce resource (SXC007); and
//! strip-mining advice when loop counts leave a short final strip just
//! above a multiple of the vector register length (SXC008).
//!
//! [`OpTrace`]: sxsim::OpTrace

use crate::report::{Diagnostic, Severity};
use std::collections::BTreeMap;
use sxsim::timing::Access;
use sxsim::{MachineModel, Recorder, TraceEvent};

/// Events outside any FTRACE region are attributed to this pseudo-region.
pub const TOPLEVEL: &str = "(outside regions)";

/// Minimum average vector length before SXC001 stays quiet.
pub const SHORT_AVL: f64 = 64.0;
/// Vector ops a region must issue before average length is judged.
pub const MIN_OPS_FOR_AVL: u64 = 16;
/// Vector-operation ratio (%) below which SXC002 fires.
pub const MIN_VRATIO_PCT: f64 = 90.0;
/// Elements a region must process before its ratio is judged.
pub const MIN_ELEMENTS: u64 = 10_000;
/// Fraction of stream elements through gather/scatter that triggers SXC003.
pub const INDEXED_FRACTION: f64 = 0.30;
/// Elements a stride must move before it is judged for bank conflicts.
pub const MIN_STRIDE_ELEMS: u64 = 4_096;
/// Bank-conflict ratio (efficiency relative to the generic non-unit-stride
/// baseline) below which SXC004 fires.
pub const CONFLICT_RATIO: f64 = 0.90;
/// Fraction of region cycles outside vector work that triggers SXC005.
pub const SCALAR_FRACTION: f64 = 0.25;
/// Cycles a region must cost before its scalar fraction is judged.
pub const MIN_REGION_CYCLES: f64 = 10_000.0;
/// Aggregate strided efficiency (relative to the non-unit-stride rate)
/// below which SXC006 fires for a region's combined strided traffic.
pub const PRESSURE_RATIO: f64 = 0.75;
/// Redundant load-only operations a region must repeat before SXC007
/// fires (each repeat of an already-pending stream counts once).
pub const MIN_REDUNDANT_LOADS: u64 = 2;
/// A strip-mine remainder is "short" when it is at most `reg_len` divided
/// by this (SX-4: 256/8 = 32 elements riding a full startup charge).
pub const STRIP_REMAINDER_DIV: usize = 8;

/// Per-region aggregates accumulated during replay.
#[derive(Debug, Clone, Default)]
struct RegionAgg {
    vector_ops: u64,
    vector_elements: u64,
    short_vector_ops: u64,
    /// Elements moved per access stream (`n` per load/store of each op).
    stream_elements: u64,
    /// Of those, elements through gather/scatter hardware.
    indexed_elements: u64,
    /// Elements moved at each stride > 2 (where conflicts are possible).
    stride_elements: BTreeMap<usize, u64>,
    vector_cycles: f64,
    scalar_cycles: f64,
    other_cycles: f64,
    scalar_iters: u64,
    /// Vector-op length histogram (for strip-mining advice).
    n_counts: BTreeMap<usize, u64>,
    /// Load-only operand-stream signatures seen since the last write
    /// barrier, with the elements each moved (for reload detection).
    pending_loads: BTreeMap<String, u64>,
    /// Load-only ops that repeated a pending signature, and the elements
    /// they re-read.
    redundant_loads: u64,
    redundant_elems: u64,
}

/// Aggregates an op stream into per-region statistics and emits
/// vectorization lints.
#[derive(Debug, Default)]
pub struct VectorLinter {
    regions: BTreeMap<String, RegionAgg>,
    open: Option<String>,
}

impl VectorLinter {
    pub fn new() -> VectorLinter {
        VectorLinter::default()
    }

    fn agg(&mut self) -> &mut RegionAgg {
        let key = self.open.as_deref().unwrap_or(TOPLEVEL).to_string();
        self.regions.entry(key).or_default()
    }

    /// Judge every region seen so far against `model`. Vector-specific
    /// lints (SXC001–SXC004) only apply to vector machines.
    pub fn diagnostics(&self, model: &MachineModel) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let wpc = model.memory.port_words_per_cycle();
        for (name, a) in &self.regions {
            let diag = |code, message, hint: String| Diagnostic {
                severity: Severity::Warning,
                code,
                region: name.clone(),
                message,
                hint,
            };

            if model.is_vector() {
                // SXC001: short average vector length.
                if a.vector_ops >= MIN_OPS_FOR_AVL {
                    let avl = a.vector_elements as f64 / a.vector_ops as f64;
                    if avl < SHORT_AVL {
                        out.push(diag(
                            "SXC001",
                            format!(
                                "average vector length {avl:.1} over {} vector ops (threshold {SHORT_AVL})",
                                a.vector_ops
                            ),
                            "restructure loops so the vectorized axis is the long one \
                             (the VFFT-vs-RFFT transformation of §4.3)"
                                .to_string(),
                        ));
                    }
                }

                // SXC002: low vector-operation ratio.
                let total_ops = a.vector_elements + a.scalar_iters;
                if total_ops >= MIN_ELEMENTS {
                    let ratio = 100.0 * a.vector_elements as f64 / total_ops as f64;
                    if ratio < MIN_VRATIO_PCT {
                        out.push(diag(
                            "SXC002",
                            format!(
                                "vector operation ratio {ratio:.1}% over {total_ops} operations \
                                 (threshold {MIN_VRATIO_PCT}%)"
                            ),
                            "vectorize the residual scalar loops; on a machine with a 16:1 \
                             vector:scalar speed ratio, 90% vectorization yields only ~6x"
                                .to_string(),
                        ));
                    }
                }

                // SXC003: gather/scatter-dominated traffic.
                if a.stream_elements >= MIN_ELEMENTS {
                    let frac = a.indexed_elements as f64 / a.stream_elements as f64;
                    if frac > INDEXED_FRACTION {
                        out.push(diag(
                            "SXC003",
                            format!(
                                "{:.0}% of stream elements go through gather/scatter \
                                 (threshold {:.0}%)",
                                100.0 * frac,
                                100.0 * INDEXED_FRACTION
                            ),
                            "list-vector hardware sustains a fraction of the contiguous port \
                             rate; reorder data to recover stride access where possible"
                                .to_string(),
                        ));
                    }
                }

                // SXC004: strides colliding on the banked memory.
                for (&stride, &elems) in &a.stride_elements {
                    if elems < MIN_STRIDE_ELEMS {
                        continue;
                    }
                    let eff = model.memory.stride_efficiency(stride, wpc);
                    let base = model.memory.nonunit_stride_factor;
                    let conflict = if base > 0.0 { eff / base } else { 1.0 };
                    if conflict < CONFLICT_RATIO {
                        let banks = model.memory.banks;
                        let distinct = banks / gcd(stride, banks);
                        out.push(diag(
                            "SXC004",
                            format!(
                                "stride {stride} touches only {distinct} of {banks} banks \
                                 ({elems} elements at {:.0}% of the achievable non-unit-stride rate)",
                                100.0 * conflict
                            ),
                            format!(
                                "pad the leading dimension so the stride is odd \
                                 (e.g. {}), restoring all {banks} banks",
                                stride + 1
                            ),
                        ));
                    }
                }

                // SXC006: aggregate bank-occupancy pressure. Individually
                // small strided streams (each under the SXC004 volume bar)
                // can still add up to a region that runs far below the
                // achievable strided rate.
                let strided_total: u64 = a.stride_elements.values().sum();
                if strided_total >= MIN_ELEMENTS {
                    let base = model.memory.nonunit_stride_factor;
                    let weighted: f64 = a
                        .stride_elements
                        .iter()
                        .map(|(&stride, &elems)| {
                            let eff = model.memory.stride_efficiency(stride, wpc);
                            let conflict = if base > 0.0 { eff / base } else { 1.0 };
                            conflict * elems as f64
                        })
                        .sum();
                    let pressure = weighted / strided_total as f64;
                    if pressure < PRESSURE_RATIO {
                        out.push(diag(
                            "SXC006",
                            format!(
                                "strided traffic sustains {:.0}% of the achievable \
                                 non-unit-stride rate across {} stride(s), {} elements \
                                 (threshold {:.0}%)",
                                100.0 * pressure,
                                a.stride_elements.len(),
                                strided_total,
                                100.0 * PRESSURE_RATIO
                            ),
                            "the region's strides collectively occupy too few banks; \
                             pad leading dimensions to odd strides or transpose so the \
                             inner axis is contiguous"
                                .to_string(),
                        ));
                    }
                }

                // SXC008: strip-mining advice — loop counts that leave a
                // short final strip pay a full startup charge for a few
                // elements on every pass.
                if let Some(vu) = &model.vector {
                    let reg = vu.reg_len;
                    let max_rem = reg / STRIP_REMAINDER_DIV;
                    let mut strip_ops = 0u64;
                    let mut worst: Option<(usize, u64)> = None;
                    for (&n, &count) in &a.n_counts {
                        let rem = if n > reg { n % reg } else { 0 };
                        if rem > 0 && rem <= max_rem {
                            strip_ops += count;
                            if worst.is_none_or(|(_, c)| count > c) {
                                worst = Some((n, count));
                            }
                        }
                    }
                    if strip_ops >= MIN_OPS_FOR_AVL {
                        let (n, count) = worst.expect("strip_ops > 0 implies a worst n");
                        out.push(diag(
                            "SXC008",
                            format!(
                                "{strip_ops} vector ops leave a short strip-mine remainder \
                                 (e.g. {count} ops of length {n}: {n} mod {reg} = {} \
                                 <= {max_rem})",
                                n % reg
                            ),
                            format!(
                                "the final strip pays the full {:.0}-cycle startup for a \
                                 handful of elements; pad the loop count to a multiple of \
                                 {reg} or fold the remainder into the preceding strip",
                                vu.startup_cycles
                            ),
                        ));
                    }
                }
            }

            // SXC007: reloading an identical operand stream with no
            // intervening write — redundant memory traffic a common-
            // subexpression pass would eliminate. Applies to cache
            // machines too: the reload misses all the way to memory there.
            if a.redundant_loads >= MIN_REDUNDANT_LOADS && a.redundant_elems >= MIN_ELEMENTS {
                out.push(diag(
                    "SXC007",
                    format!(
                        "{} load-only operation(s) re-read identical operand streams \
                         ({} redundant elements) with no intervening write",
                        a.redundant_loads, a.redundant_elems
                    ),
                    "hoist the repeated reduction or load out of the loop (common-\
                     subexpression elimination); the memory port is the scarce resource"
                        .to_string(),
                ));
            }

            // SXC005: Amdahl — too much of the region is not vector work.
            let total = a.vector_cycles + a.scalar_cycles + a.other_cycles;
            if total >= MIN_REGION_CYCLES {
                let nonvec = (a.scalar_cycles + a.other_cycles) / total;
                if nonvec > SCALAR_FRACTION {
                    let cap = 1.0 / nonvec;
                    out.push(diag(
                        "SXC005",
                        format!(
                            "{:.0}% of the region's {total:.0} cycles are scalar or overhead \
                             (threshold {:.0}%)",
                            100.0 * nonvec,
                            100.0 * SCALAR_FRACTION
                        ),
                        format!(
                            "Amdahl caps any vector/parallel speedup of this region at {cap:.1}x"
                        ),
                    ));
                }
            }
        }
        out
    }
}

impl Recorder for VectorLinter {
    fn record(&mut self, ev: &TraceEvent) {
        match ev {
            TraceEvent::EnterRegion { name } => {
                self.open = Some(name.clone());
                // Region transitions are conservative write barriers: ops
                // inside may write what the enclosing stream read.
                self.clear_pending();
            }
            TraceEvent::ExitRegion { .. } => {
                self.open = None;
                self.clear_pending();
            }
            TraceEvent::VecOp { class, n, loads, stores, cost } => {
                let n = *n;
                let writes_memory =
                    stores.iter().any(|s| matches!(s, Access::Stride(_) | Access::Indexed));
                let reads_memory =
                    loads.iter().any(|s| matches!(s, Access::Stride(_) | Access::Indexed));
                let a = self.agg();
                a.vector_ops += 1;
                a.vector_elements += n as u64;
                if (n as f64) < SHORT_AVL {
                    a.short_vector_ops += 1;
                }
                a.vector_cycles += cost.cycles;
                *a.n_counts.entry(n).or_insert(0) += 1;
                for acc in loads.iter().chain(stores.iter()) {
                    a.stream_elements += n as u64;
                    match acc {
                        Access::Indexed => a.indexed_elements += n as u64,
                        Access::Stride(s) if *s > 2 => {
                            *a.stride_elements.entry(*s).or_insert(0) += n as u64;
                        }
                        _ => {}
                    }
                }
                if writes_memory {
                    a.pending_loads.clear();
                } else if reads_memory {
                    // Load-only op: identical (class, length, access list)
                    // with no write in between means the same streams are
                    // fetched again.
                    let sig = format!("{class:?}/{n}/{loads:?}");
                    use std::collections::btree_map::Entry;
                    match a.pending_loads.entry(sig) {
                        Entry::Occupied(_) => {
                            a.redundant_loads += 1;
                            a.redundant_elems += n as u64;
                        }
                        Entry::Vacant(v) => {
                            v.insert(n as u64);
                        }
                    }
                }
            }
            TraceEvent::ScalarLoop { iters, cost } => {
                let a = self.agg();
                a.scalar_iters += *iters as u64;
                a.scalar_cycles += cost.cycles;
                a.pending_loads.clear(); // scalar code may write anything
            }
            TraceEvent::Intrinsic { n, cost, .. } => {
                let a = self.agg();
                a.vector_ops += 1;
                a.vector_elements += *n as u64;
                a.vector_cycles += cost.cycles;
                a.pending_loads.clear(); // intrinsics write their results
            }
            TraceEvent::Charge { cost } => {
                let a = self.agg();
                a.other_cycles += cost.cycles;
                a.pending_loads.clear(); // barriers/IO publish other work
            }
        }
    }
}

impl VectorLinter {
    /// Drop every region's pending load signatures (conservative barrier).
    fn clear_pending(&mut self) {
        for a in self.regions.values_mut() {
            a.pending_loads.clear();
        }
    }
}

/// Greatest common divisor (sxsim's is private to its crate).
pub(crate) fn gcd(a: usize, b: usize) -> usize {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxsim::{presets, Ftrace, Vm};

    fn traced_vm() -> Vm {
        let mut vm = Vm::new(presets::sx4_benchmarked());
        vm.start_trace();
        vm
    }

    fn lints(vm: &mut Vm) -> Vec<Diagnostic> {
        let model = vm.model().clone();
        let trace = vm.take_trace().expect("tracing was on");
        let mut linter = VectorLinter::new();
        trace.replay(&mut linter);
        linter.diagnostics(&model)
    }

    #[test]
    fn clean_unit_stride_work_has_no_findings() {
        let mut vm = traced_vm();
        let a = vec![1.0f64; 100_000];
        let b = vec![2.0f64; 100_000];
        let mut c = vec![0.0f64; 100_000];
        vm.add(&mut c, &a, &b);
        vm.fma(&mut c, &a, &b, &a);
        assert!(lints(&mut vm).is_empty());
    }

    #[test]
    fn short_vectors_flagged() {
        let mut vm = traced_vm();
        let a = vec![1.0f64; 8];
        let mut b = vec![0.0f64; 8];
        for _ in 0..100 {
            vm.copy(&mut b, &a);
        }
        let ds = lints(&mut vm);
        assert!(ds.iter().any(|d| d.code == "SXC001"), "{ds:?}");
    }

    #[test]
    fn power_of_two_stride_flagged_with_bank_counts() {
        let mut vm = traced_vm();
        let n = 8_192usize;
        let src = vec![1.0f64; n * 128];
        let mut dst = vec![0.0f64; n * 128];
        vm.copy_strided(&mut dst, 128, &src, 128, n);
        let ds = lints(&mut vm);
        let d = ds.iter().find(|d| d.code == "SXC004").expect("bank-conflict lint");
        assert!(d.message.contains("8 of 1024 banks"), "{}", d.message);
        assert!(d.hint.contains("odd"), "{}", d.hint);
    }

    #[test]
    fn odd_stride_not_flagged_as_conflict() {
        let mut vm = traced_vm();
        let n = 8_192usize;
        let src = vec![1.0f64; n * 129];
        let mut dst = vec![0.0f64; n * 129];
        vm.copy_strided(&mut dst, 129, &src, 129, n);
        let ds = lints(&mut vm);
        assert!(!ds.iter().any(|d| d.code == "SXC004"), "{ds:?}");
    }

    #[test]
    fn gather_dominated_region_flagged() {
        let mut vm = traced_vm();
        let n = 50_000usize;
        let src: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let idx: Vec<usize> = (0..n).rev().collect();
        let mut dst = vec![0.0f64; n];
        vm.gather(&mut dst, &src, &idx);
        let ds = lints(&mut vm);
        assert!(ds.iter().any(|d| d.code == "SXC003"), "{ds:?}");
    }

    #[test]
    fn scalar_heavy_region_gets_amdahl_warning() {
        let mut vm = traced_vm();
        let mut ft = Ftrace::new();
        let a = vec![1.0f64; 1000];
        let mut b = vec![0.0f64; 1000];
        ft.region("physics", &mut vm, |vm| {
            vm.copy(&mut b, &a);
            vm.charge_scalar_loop(60_000, 2.0, 2.0, 1.0, sxsim::LocalityPattern::Streaming);
        });
        let ds = lints(&mut vm);
        let d = ds.iter().find(|d| d.code == "SXC005").expect("Amdahl warning");
        assert_eq!(d.region, "physics");
        // The scalar ratio also trips SXC002 in the same region.
        assert!(ds.iter().any(|d| d.code == "SXC002"), "{ds:?}");
    }

    #[test]
    fn findings_attribute_to_their_region() {
        let mut vm = traced_vm();
        let mut ft = Ftrace::new();
        let n = 8_192usize;
        let src = vec![1.0f64; n * 128];
        let mut dst = vec![0.0f64; n * 128];
        let long = vec![1.0f64; 100_000];
        let mut out = vec![0.0f64; 100_000];
        ft.region("bad-stride", &mut vm, |vm| vm.copy_strided(&mut dst, 128, &src, 128, n));
        ft.region("clean", &mut vm, |vm| vm.copy(&mut out, &long));
        let ds = lints(&mut vm);
        let bad: Vec<_> = ds.iter().filter(|d| d.code == "SXC004").collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].region, "bad-stride");
    }

    #[test]
    fn aggregate_stride_pressure_flagged_below_sxc004_volume() {
        let mut vm = traced_vm();
        let n = 1_500usize; // 3_000 elements per stride: under MIN_STRIDE_ELEMS
        for &stride in &[64usize, 128, 256, 512] {
            let src = vec![1.0f64; n * stride];
            let mut dst = vec![0.0f64; n * stride];
            vm.copy_strided(&mut dst, stride, &src, stride, n);
        }
        let ds = lints(&mut vm);
        assert!(!ds.iter().any(|d| d.code == "SXC004"), "no single stride crosses: {ds:?}");
        let d = ds.iter().find(|d| d.code == "SXC006").expect("aggregate pressure lint");
        assert!(d.message.contains("4 stride(s)"), "{}", d.message);
    }

    #[test]
    fn odd_strides_produce_no_pressure_finding() {
        let mut vm = traced_vm();
        let n = 3_000usize;
        for &stride in &[63usize, 129, 255, 513] {
            let src = vec![1.0f64; n * stride];
            let mut dst = vec![0.0f64; n * stride];
            vm.copy_strided(&mut dst, stride, &src, stride, n);
        }
        let ds = lints(&mut vm);
        assert!(!ds.iter().any(|d| d.code == "SXC006"), "{ds:?}");
    }

    #[test]
    fn repeated_reduction_without_write_is_a_reload() {
        let mut vm = traced_vm();
        let a: Vec<f64> = (0..6_000).map(|i| i as f64).collect();
        for _ in 0..4 {
            vm.sum(&a); // identical load-only stream, nothing written
        }
        let ds = lints(&mut vm);
        let d = ds.iter().find(|d| d.code == "SXC007").expect("reload lint");
        assert!(d.message.contains("3 load-only"), "{}", d.message);
        assert!(d.message.contains("18000 redundant elements"), "{}", d.message);
    }

    #[test]
    fn intervening_write_clears_reload_tracking() {
        let mut vm = traced_vm();
        let a: Vec<f64> = (0..6_000).map(|i| i as f64).collect();
        let mut out = vec![0.0f64; 6_000];
        for _ in 0..4 {
            vm.sum(&a);
            vm.copy(&mut out, &a); // a write barrier between the reloads
        }
        let ds = lints(&mut vm);
        assert!(!ds.iter().any(|d| d.code == "SXC007"), "{ds:?}");
    }

    #[test]
    fn short_strip_mine_remainder_flagged() {
        let mut vm = traced_vm();
        let n = 256 * 4 + 16; // remainder 16 <= 256/8
        let a = vec![1.0f64; n];
        let b = vec![2.0f64; n];
        let mut c = vec![0.0f64; n];
        for _ in 0..20 {
            vm.add(&mut c, &a, &b);
        }
        let ds = lints(&mut vm);
        let d = ds.iter().find(|d| d.code == "SXC008").expect("strip-mining lint");
        assert!(d.message.contains("1040"), "{}", d.message);
        assert!(d.hint.contains("multiple of"), "{}", d.hint);
    }

    #[test]
    fn full_strips_and_long_remainders_are_clean() {
        let mut vm = traced_vm();
        let a = vec![1.0f64; 1024]; // 4 full strips exactly
        let b = vec![2.0f64; 1024];
        let mut c = vec![0.0f64; 1024];
        for _ in 0..20 {
            vm.add(&mut c, &a, &b);
        }
        let la = vec![1.0f64; 256 * 4 + 200]; // remainder 200 > 32
        let lb = vec![2.0f64; 256 * 4 + 200];
        let mut lc = vec![0.0f64; 256 * 4 + 200];
        for _ in 0..20 {
            vm.add(&mut lc, &la, &lb);
        }
        let ds = lints(&mut vm);
        assert!(!ds.iter().any(|d| d.code == "SXC008"), "{ds:?}");
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(128, 1024), 128);
        assert_eq!(gcd(129, 1024), 1);
        assert_eq!(gcd(1000, 1024), 8);
    }
}
