//! Diagnostics and the rendered report.
//!
//! Everything here is deterministic: diagnostics are value types, and
//! [`Report::render`] sorts them by (severity, code, region, message)
//! before printing, so the same op stream always produces byte-identical
//! output — a property the bench CLI's `check` subcommand relies on.

use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// A ledger inconsistency or detected race — the simulation's
    /// accounting (or the program under test) is wrong.
    Error,
    /// A performance hazard: the code runs, but the SX-4 won't like it.
    Warning,
}

impl Severity {
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One finding, attributed to an FTRACE region (or a fixture/array name
/// when no region applies).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    pub severity: Severity,
    /// Stable lint code (`SXC001`…); what `--deny-warnings` keys on.
    pub code: &'static str,
    /// FTRACE region, fixture or array the finding is attributed to.
    pub region: String,
    /// What was observed.
    pub message: String,
    /// What to do about it (empty when there is no actionable advice).
    pub hint: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] `{}`: {}", self.severity.label(), self.code, self.region, self.message)?;
        if !self.hint.is_empty() {
            write!(f, "\n  hint: {}", self.hint)?;
        }
        Ok(())
    }
}

/// An ordered collection of findings from one analysis run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    diags: Vec<Diagnostic>,
}

impl Report {
    pub fn new() -> Report {
        Report::default()
    }

    pub fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    pub fn extend(&mut self, ds: impl IntoIterator<Item = Diagnostic>) {
        self.diags.extend(ds);
    }

    /// The findings, in sorted (deterministic) order.
    pub fn diagnostics(&mut self) -> &[Diagnostic] {
        self.diags.sort();
        &self.diags
    }

    pub fn len(&self) -> usize {
        self.diags.len()
    }

    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    pub fn error_count(&self) -> usize {
        self.diags.iter().filter(|d| d.severity == Severity::Error).count()
    }

    pub fn warning_count(&self) -> usize {
        self.diags.iter().filter(|d| d.severity == Severity::Warning).count()
    }

    /// True if any finding has the given code.
    pub fn has_code(&self, code: &str) -> bool {
        self.diags.iter().any(|d| d.code == code)
    }

    /// Render the full report. Errors print before warnings; ties break on
    /// code, then region, then message, so output is byte-stable.
    pub fn render(&mut self) -> String {
        if self.diags.is_empty() {
            return "sxcheck: no findings\n".to_string();
        }
        let (errors, warnings) = (self.error_count(), self.warning_count());
        let mut out = format!(
            "sxcheck: {} finding{} ({} error{}, {} warning{})\n",
            self.diags.len(),
            if self.diags.len() == 1 { "" } else { "s" },
            errors,
            if errors == 1 { "" } else { "s" },
            warnings,
            if warnings == 1 { "" } else { "s" },
        );
        for d in self.diagnostics() {
            out.push_str(&format!("{d}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(sev: Severity, code: &'static str, region: &str) -> Diagnostic {
        Diagnostic {
            severity: sev,
            code,
            region: region.to_string(),
            message: "m".to_string(),
            hint: String::new(),
        }
    }

    #[test]
    fn render_is_sorted_and_counted() {
        let mut r = Report::new();
        r.push(diag(Severity::Warning, "SXC004", "b"));
        r.push(diag(Severity::Error, "SXC202", "a"));
        r.push(diag(Severity::Warning, "SXC001", "a"));
        let text = r.render();
        assert!(text.starts_with("sxcheck: 3 findings (1 error, 2 warnings)"));
        let e = text.find("SXC202").unwrap();
        let w1 = text.find("SXC001").unwrap();
        let w4 = text.find("SXC004").unwrap();
        assert!(e < w1 && w1 < w4, "errors first, then warnings by code:\n{text}");
    }

    #[test]
    fn render_is_deterministic() {
        let mut a = Report::new();
        let mut b = Report::new();
        for report in [&mut a, &mut b] {
            report.push(diag(Severity::Warning, "SXC002", "y"));
            report.push(diag(Severity::Warning, "SXC002", "x"));
        }
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn hint_prints_on_its_own_line() {
        let d = Diagnostic {
            severity: Severity::Warning,
            code: "SXC004",
            region: "r".into(),
            message: "bad stride".into(),
            hint: "pad it".into(),
        };
        assert_eq!(format!("{d}"), "warning[SXC004] `r`: bad stride\n  hint: pad it");
    }
}
