//! Property test: `Report::render` is a pure function of the diagnostic
//! *set* — insertion order never leaks into the output. This is what lets
//! the `--matrix` gate diff reports across runs and lets the baseline key
//! on (code, region) alone.

use ncar_suite::SmallRng;
use sxcheck::{Diagnostic, Report, Severity};

const CODES: &[&str] = &[
    "SXC001", "SXC002", "SXC003", "SXC004", "SXC005", "SXC006", "SXC007", "SXC008", "SXC101",
    "SXC301", "SXC302",
];

/// A deterministic pool of diagnostics with deliberate near-collisions:
/// same code in different regions, same region under different codes,
/// duplicate entries, tied sort keys differing only in message.
fn pool(rng: &mut SmallRng) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for i in 0..40 {
        let code = CODES[rng.next_below(CODES.len())];
        let severity =
            if ("SXC100".."SXC300").contains(&code) { Severity::Error } else { Severity::Warning };
        let region = format!("region-{}", rng.next_below(5));
        let message = format!("finding variant {}", rng.next_below(3));
        let hint = if i % 4 == 0 { String::new() } else { format!("hint {}", i % 3) };
        out.push(Diagnostic { severity, code, region, message, hint });
    }
    // A few exact duplicates: rendering must be stable under those too.
    let dupes: Vec<Diagnostic> = out.iter().take(4).cloned().collect();
    out.extend(dupes);
    out
}

#[test]
fn render_is_byte_identical_under_shuffled_insertion_order() {
    for seed in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0x5eed_0000 + seed);
        let diags = pool(&mut rng);

        let mut reference = Report::new();
        reference.extend(diags.iter().cloned());
        let expected = reference.render();

        for round in 0..8 {
            let mut shuffled = diags.clone();
            let mut order = SmallRng::seed_from_u64(seed * 1_000 + round);
            order.shuffle(&mut shuffled);
            let mut report = Report::new();
            report.extend(shuffled);
            assert_eq!(
                report.render(),
                expected,
                "render depends on insertion order (seed {seed}, round {round})"
            );
        }
    }
}

#[test]
fn render_is_byte_identical_under_split_extend_vs_push() {
    let mut rng = SmallRng::seed_from_u64(0xdead_beef);
    let diags = pool(&mut rng);

    let mut all_at_once = Report::new();
    all_at_once.extend(diags.iter().cloned());

    let mut one_by_one = Report::new();
    for d in diags.iter().rev().cloned() {
        one_by_one.push(d);
    }

    assert_eq!(all_at_once.render(), one_by_one.render());
}
