//! LINPACK "Toward Peak Performance": the n = 1000 entry of the LINPACK
//! report allowed any implementation, and by 1996 everyone submitted a
//! *blocked* (BLAS-3) right-looking LU. This module implements that
//! variant next to the classic BLAS-1 `dgefa` — and makes the paper's §3.1
//! point ("LINPACK tends to measure peak performance") quantitative: the
//! cache machines gain enormously from blocking (data reuse), the vector
//! machines gain much less (they were never cache-starved).

use crate::linpack::Matrix;
use sxsim::{Access, LocalityPattern, MachineModel, VecOp, Vm, VopClass};

/// Blocked right-looking LU without pivoting (the TPP test matrices are
/// diagonally dominated to make this safe; ours is constructed that way).
/// Factors in place; returns Err on a tiny pivot.
pub fn lu_blocked(vm: &mut Vm, a: &mut Matrix, block: usize) -> Result<(), String> {
    let n = a.n;
    assert!(block >= 1);
    let mut k0 = 0;
    while k0 < n {
        let kb = block.min(n - k0);
        // Factor the diagonal panel (unblocked, BLAS-1 style). On a cache
        // machine the panel's kb columns are reused within the block, so
        // when kb > 1 the sweeps run cache-resident; the kb = 1 case is the
        // classic uncached column sweep.
        let mut panel_elems = 0usize;
        for k in k0..k0 + kb {
            let pivot = a.at(k, k);
            if pivot.abs() < 1e-12 {
                return Err(format!("tiny pivot at {k}"));
            }
            let inv = 1.0 / pivot;
            for i in k + 1..n {
                a.data[i + k * n] *= inv;
            }
            let end = (k0 + kb).min(n);
            for j in k + 1..end {
                let mult = a.at(k, j);
                for i in k + 1..n {
                    a.data[i + j * n] -= mult * a.at(i, k);
                }
            }
            if vm.model().is_vector() {
                vm.charge_vector_op(&VecOp::new(
                    n - k - 1,
                    VopClass::Mul,
                    &[Access::Stride(1)],
                    &[Access::Stride(1)],
                ));
                vm.charge_vector_op_repeated(
                    &VecOp::new(
                        n - k - 1,
                        VopClass::Fma,
                        &[Access::Stride(1), Access::Stride(1)],
                        &[Access::Stride(1)],
                    ),
                    end - k - 1,
                );
            } else {
                panel_elems += (n - k - 1) * (end - k);
            }
        }
        if !vm.model().is_vector() {
            let pattern = if kb > 1 {
                LocalityPattern::Resident { working_set_bytes: 2 * kb * 8 * 64 }
            } else {
                LocalityPattern::Streaming
            };
            vm.charge_scalar_loop(panel_elems, 2.0, if kb > 1 { 1.2 } else { 3.0 }, 1.0, pattern);
        }
        let k1 = k0 + kb;
        if k1 >= n {
            break;
        }
        // Triangular solve for the row panel: U12 = L11^{-1} A12.
        for j in k1..n {
            for k in k0..k1 {
                let mult = a.at(k, j);
                for i in k + 1..k1 {
                    a.data[i + j * n] -= a.at(i, k) * mult;
                }
            }
        }
        // The kb x kb unit-lower panel stays resident during the solve.
        if vm.model().is_vector() {
            vm.charge_vector_op(&VecOp::new(
                (n - k1) * kb * kb / 2,
                VopClass::Fma,
                &[Access::Stride(1), Access::Stride(1)],
                &[Access::Stride(1)],
            ));
        } else {
            vm.charge_scalar_loop(
                (n - k1) * kb * kb / 2,
                2.0,
                0.6,
                1.0 / kb as f64,
                LocalityPattern::Resident { working_set_bytes: (kb * kb + 2 * kb) * 8 },
            );
        }
        // Trailing update: A22 -= L21 * U12 — the BLAS-3 heart. On a cache
        // machine the kb x kb panel is reused n-k1 times from cache; the
        // charge reflects that reuse with a Resident pattern.
        for j in k1..n {
            for k in k0..k1 {
                let mult = a.at(k, j);
                for i in k1..n {
                    a.data[i + j * n] -= a.at(i, k) * mult;
                }
            }
        }
        let elems = (n - k1) * (n - k1) * kb;
        if vm.model().is_vector() {
            // Long vector updates; reuse does not matter without a cache.
            let cols = (n - k1) * kb;
            vm.charge_vector_op_repeated(
                &VecOp::new(
                    n - k1,
                    VopClass::Fma,
                    &[Access::Stride(1), Access::Stride(1)],
                    &[Access::Stride(1)],
                ),
                cols,
            );
        } else if kb > 1 {
            // Cache machine: the DGEMM micro-kernel — resident panel,
            // 8-way unrolled inner loop (amortizing loop/branch overhead),
            // near-unit memory traffic. This is where TPP numbers come from.
            vm.charge_scalar_loop(
                elems / 8,
                16.0,
                4.8, // most operands come from the resident panel
                8.0 / kb as f64,
                LocalityPattern::Resident { working_set_bytes: (kb * kb + 4 * kb) * 8 },
            );
        } else {
            // kb = 1 degenerates to the classic streaming DAXPY sweep.
            vm.charge_scalar_loop(elems, 2.0, 2.0, 1.0, LocalityPattern::Streaming);
        }
        k0 = k1;
    }
    Ok(())
}

/// A diagonally dominant test matrix (safe for unpivoted LU).
pub fn dominant_matrix(n: usize, seed: u64) -> Matrix {
    let mut m = Matrix::linpack(n, seed);
    for i in 0..n {
        let row_sum: f64 = (0..n).map(|j| m.at(i, j).abs()).sum();
        m.data[i + i * n] = row_sum + 1.0;
    }
    m
}

/// TPP measurement: blocked LU Mflops on `model` for order `n`.
pub fn linpack_tpp(model: &MachineModel, n: usize, block: usize) -> f64 {
    let mut vm = Vm::new(model.clone());
    let mut a = dominant_matrix(n, 1000);
    lu_blocked(&mut vm, &mut a, block).expect("dominant matrix factors");
    let ops = 2.0 / 3.0 * (n as f64).powi(3);
    ops / vm.seconds() / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linpack::{dgesl, Matrix};
    use sxsim::presets;

    /// Factor, then solve with unit pivots and verify against a known
    /// solution (no pivoting, so pivots vector is identity).
    #[test]
    fn blocked_lu_factors_correctly() {
        let n = 24;
        let model = presets::sx4_benchmarked();
        let mut vm = Vm::new(model);
        let a0 = dominant_matrix(n, 7);
        let mut b = vec![0.0f64; n];
        for (i, bi) in b.iter_mut().enumerate() {
            for j in 0..n {
                *bi += a0.at(i, j) * (j as f64 + 1.0);
            }
        }
        let mut a = a0.clone();
        lu_blocked(&mut vm, &mut a, 8).unwrap();
        let pivots: Vec<usize> = (0..n - 1).collect(); // identity interchanges
        dgesl(&mut vm, &a, &pivots, &mut b);
        for (j, &x) in b.iter().enumerate() {
            assert!((x - (j as f64 + 1.0)).abs() < 1e-8, "x[{j}] = {x}");
        }
    }

    #[test]
    fn block_size_does_not_change_the_factors() {
        let n = 20;
        let model = presets::sx4_benchmarked();
        let factor = |block: usize| {
            let mut vm = Vm::new(model.clone());
            let mut a = dominant_matrix(n, 3);
            lu_blocked(&mut vm, &mut a, block).unwrap();
            a.data
        };
        let a1 = factor(1);
        let a8 = factor(8);
        let an = factor(n);
        for i in 0..n * n {
            assert!((a1[i] - a8[i]).abs() < 1e-9);
            assert!((a1[i] - an[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn blocking_transforms_the_cache_machine() {
        // The §3.1 point, quantified: BLAS-3 blocking multiplies the
        // RS6000's LINPACK number...
        let m = presets::rs6000_590();
        let unblocked = linpack_tpp(&m, 320, 1);
        let blocked = linpack_tpp(&m, 320, 16);
        assert!(
            blocked > 1.5 * unblocked,
            "blocking should transform a cache machine: {unblocked} -> {blocked}"
        );
    }

    #[test]
    fn blocking_barely_moves_the_vector_machine() {
        // ...while the SX-4 gains comparatively little: it was never
        // starved for cache.
        let m = presets::sx4_benchmarked();
        let unblocked = linpack_tpp(&m, 320, 1);
        let blocked = linpack_tpp(&m, 320, 16);
        let gain = blocked / unblocked;
        assert!(gain < 1.6, "a vector machine should gain little from blocking: {gain}");
    }

    #[test]
    fn singular_panel_detected() {
        let model = presets::sx4_benchmarked();
        let mut vm = Vm::new(model);
        let n = 8;
        let mut a = Matrix { n, data: vec![0.0; n * n] };
        assert!(lu_blocked(&mut vm, &mut a, 4).is_err());
    }
}
