//! HINT — Hierarchical INTegration (Gustafson & Snell), §3.3.
//!
//! HINT brackets the area under y = (1-x)/(1+x) for x in \[0,1\] by interval
//! subdivision: every split tightens the rational bounds, and the metric is
//! QUIPS — "quality improvements per second" — where quality is the
//! reciprocal of the remaining bound gap. The paper runs HINT on the four
//! Table 1 machines and finds it "better tuned to measuring scalar
//! processor performance than the performance of vector processors": both
//! Cray machines score *below* the workstations, the exact opposite of the
//! RADABS ranking. Reproducing that inversion is this module's job.
//!
//! The integration here is real (the bounds provably bracket
//! 2 ln 2 − 1 and tighten monotonically); the machine time is charged
//! through the scalar path — adaptive subdivision, heap maintenance and
//! scattered interval records do not vectorize, which is precisely why
//! HINT inverts the ranking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use sxsim::{LocalityPattern, MachineModel, Vm};

/// The integrand of HINT.
fn f(x: f64) -> f64 {
    (1.0 - x) / (1.0 + x)
}

/// Exact value of the integral, for tests: 2 ln 2 - 1.
pub fn exact_integral() -> f64 {
    2.0 * std::f64::consts::LN_2 - 1.0
}

/// An interval with its lower/upper area bounds. `f` is decreasing on
/// [0, 1], so on [x0, x1] the rectangle f(x1)*(x1-x0) is a lower bound and
/// f(x0)*(x1-x0) an upper bound.
#[derive(Debug, Clone, Copy)]
struct Interval {
    x0: f64,
    x1: f64,
    lower: f64,
    upper: f64,
}

impl Interval {
    fn new(x0: f64, x1: f64) -> Interval {
        let w = x1 - x0;
        Interval { x0, x1, lower: f(x1) * w, upper: f(x0) * w }
    }

    fn gap(&self) -> f64 {
        self.upper - self.lower
    }
}

impl PartialEq for Interval {
    fn eq(&self, o: &Interval) -> bool {
        self.gap() == o.gap()
    }
}
impl Eq for Interval {}
impl PartialOrd for Interval {
    fn partial_cmp(&self, o: &Interval) -> Option<Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for Interval {
    fn cmp(&self, o: &Interval) -> Ordering {
        self.gap().total_cmp(&o.gap())
    }
}

/// Result of a HINT run on one machine.
#[derive(Debug, Clone)]
pub struct HintResult {
    /// Net QUIPS in millions — cumulative quality over total time at the
    /// end of the run. This is the single-number score Table 1 quotes.
    pub mquips: f64,
    /// Peak QUIPS over the trajectory (the top of the HINT curve, reached
    /// while the working set still fits in cache).
    pub peak_mquips: f64,
    /// Final lower/upper bounds on the integral.
    pub lower: f64,
    pub upper: f64,
    /// QUIPS trajectory: (splits, mquips at that point).
    pub trajectory: Vec<(usize, f64)>,
}

/// Bytes of state per live interval record (x0, x1, bounds, heap linkage).
const BYTES_PER_INTERVAL: usize = 48;

/// Quality units per subdivision. HINT counts quality in answer digits; a
/// binary split contributes a constant increment. The constant normalizes
/// the scale so the SPARC20 lands at its published 3.5 MQUIPS; relative
/// standings between machines are what Table 1 is about.
const QUALITY_PER_SPLIT: f64 = 12.4;

/// Scalar work of one subdivision: evaluate f at the midpoint, update two
/// bound pairs, push/pop the heap, update running totals. Most accesses
/// have strong temporal locality (the heap's top layers, the freshly split
/// records); a few chase into the cold body of the interval store.
const SPLIT_FLOPS: f64 = 40.0;
const SPLIT_HOT_LOADS: f64 = 18.0;
const SPLIT_HOT_STORES: f64 = 10.0;
const SPLIT_COLD_LOADS: f64 = 6.0;
const SPLIT_COLD_STORES: f64 = 2.0;
const SPLIT_BRANCHES: f64 = 10.0;
/// The hot set: heap top + scratch, a few KB.
const HOT_SET_BYTES: usize = 8 * 1024;

/// Run HINT on `model` for `max_splits` subdivisions and report peak QUIPS.
pub fn run_hint(model: &MachineModel, max_splits: usize) -> HintResult {
    let mut vm = Vm::new(model.clone());
    let mut heap = BinaryHeap::new();
    heap.push(Interval::new(0.0, 1.0));
    let mut total_lower = heap.peek().unwrap().lower;
    let mut total_upper = heap.peek().unwrap().upper;

    let mut trajectory = Vec::new();
    let mut peak = 0.0f64;
    let checkpoint_every = (max_splits / 64).max(1);

    for split in 1..=max_splits {
        let iv = heap.pop().expect("heap never empties");
        let mid = 0.5 * (iv.x0 + iv.x1);
        let a = Interval::new(iv.x0, mid);
        let b = Interval::new(mid, iv.x1);
        total_lower += a.lower + b.lower - iv.lower;
        total_upper += a.upper + b.upper - iv.upper;
        heap.push(a);
        heap.push(b);

        // Charge the machine: the hot part of the subdivision (heap top,
        // fresh records) stays cache-resident on cache machines but goes to
        // memory on the cache-less Cray scalar units; the cold part chases
        // into the full interval store on everybody.
        let ws = heap.len() * BYTES_PER_INTERVAL;
        vm.charge_scalar_loop_branchy(
            1,
            SPLIT_FLOPS,
            SPLIT_HOT_LOADS,
            SPLIT_HOT_STORES,
            SPLIT_BRANCHES,
            LocalityPattern::Resident { working_set_bytes: HOT_SET_BYTES },
        );
        vm.charge_scalar_loop_branchy(
            1,
            0.0,
            SPLIT_COLD_LOADS,
            SPLIT_COLD_STORES,
            0.0,
            LocalityPattern::Random { working_set_bytes: ws },
        );

        if split % checkpoint_every == 0 {
            let quality = QUALITY_PER_SPLIT * split as f64;
            let secs = vm.seconds();
            let quips = quality / secs / 1e6;
            peak = peak.max(quips);
            trajectory.push((split, quips));
        }
    }

    let net = QUALITY_PER_SPLIT * max_splits as f64 / vm.seconds() / 1e6;
    HintResult {
        mquips: net,
        peak_mquips: peak,
        lower: total_lower,
        upper: total_upper,
        trajectory,
    }
}

/// The paper's Table 1 leg: HINT MQUIPS with the benchmark's standard
/// subdivision budget.
pub fn hint_mquips(model: &MachineModel) -> f64 {
    run_hint(model, 200_000).mquips
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxsim::presets;

    #[test]
    fn bounds_bracket_exact_integral() {
        let r = run_hint(&presets::sparc20(), 10_000);
        let exact = exact_integral();
        assert!(r.lower <= exact && exact <= r.upper, "{} <= {exact} <= {}", r.lower, r.upper);
    }

    #[test]
    fn bounds_tighten_with_more_splits() {
        let small = run_hint(&presets::sparc20(), 1_000);
        let large = run_hint(&presets::sparc20(), 20_000);
        assert!(large.upper - large.lower < (small.upper - small.lower) / 4.0);
        assert!((large.upper + large.lower) / 2.0 - exact_integral() < 1e-4);
    }

    #[test]
    fn hint_inverts_the_radabs_ranking() {
        // Table 1's point: both workstations beat both vector machines on
        // HINT, while RADABS says the opposite.
        let sparc = hint_mquips(&presets::sparc20());
        let rs6k = hint_mquips(&presets::rs6000_590());
        let ymp = hint_mquips(&presets::cray_ymp());
        let j90 = hint_mquips(&presets::cri_j90());
        assert!(sparc > ymp, "sparc {sparc} vs ymp {ymp}");
        assert!(sparc > j90, "sparc {sparc} vs j90 {j90}");
        assert!(rs6k > ymp, "rs6k {rs6k} vs ymp {ymp}");
        assert!(rs6k > j90, "rs6k {rs6k} vs j90 {j90}");
        assert!(rs6k > sparc, "rs6k {rs6k} vs sparc {sparc}");
        assert!(ymp > j90, "ymp {ymp} vs j90 {j90}");
    }

    #[test]
    fn sparc20_near_published_3_5_mquips() {
        let sparc = hint_mquips(&presets::sparc20());
        assert!((2.0..6.0).contains(&sparc), "SPARC20 {sparc} MQUIPS vs paper's 3.5");
    }

    #[test]
    fn quips_decays_once_out_of_cache() {
        // The HINT curve: high QUIPS while the records fit in cache, lower
        // later — so the peak is well above the net score on a cache
        // machine, while the cache-less Y-MP runs flat.
        let r = run_hint(&presets::rs6000_590(), 400_000);
        assert!(r.peak_mquips > 1.5 * r.mquips, "peak {} vs net {}", r.peak_mquips, r.mquips);
        let flat = run_hint(&presets::cray_ymp(), 100_000);
        assert!(
            flat.peak_mquips < 1.2 * flat.mquips,
            "Y-MP should run flat: peak {} net {}",
            flat.peak_mquips,
            flat.mquips
        );
    }

    #[test]
    fn deterministic() {
        let a = run_hint(&presets::cray_ymp(), 5_000);
        let b = run_hint(&presets::cray_ymp(), 5_000);
        assert_eq!(a.mquips, b.mquips);
        assert_eq!(a.lower, b.lower);
    }
}

#[cfg(test)]
mod calibration {
    use super::*;
    use sxsim::presets;

    #[test]
    #[ignore = "calibration printout, not an assertion"]
    fn print_hint_calibration() {
        for m in presets::table1_machines() {
            println!("{:<16} {:>6.2} MQUIPS", m.name.clone(), hint_mquips(&m));
        }
    }
}
