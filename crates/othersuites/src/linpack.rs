//! LINPACK (Dongarra), §3.1 — dense LU factorization and solve.
//!
//! "The benchmark consists of solving dense systems of equations for a
//! system of order 100 and 1000. ... LINPACK tends to measure peak
//! performance of a computer and is not intended to evaluate the overall
//! performance of a computer system." The classic DGEFA/DGESL pair is
//! implemented here in its BLAS-1 column-sweep form (IDAMAX + DSCAL +
//! DAXPY), which is exactly the structure whose vector lengths shrink as
//! elimination proceeds — the reason n = 100 underestimates long-vector
//! machines and n = 1000 flatters them.

// Matrix index loops mirror the Fortran original.
#![allow(clippy::needless_range_loop)]

use ncar_suite::SmallRng;
use sxsim::{MachineModel, Vm};

/// Column-major dense matrix.
#[derive(Debug, Clone)]
pub struct Matrix {
    pub n: usize,
    /// data[i + j*n]
    pub data: Vec<f64>,
}

impl Matrix {
    /// The LINPACK random test matrix (entries in [-0.5, 0.5]), fixed seed.
    pub fn linpack(n: usize, seed: u64) -> Matrix {
        let mut rng = SmallRng::seed_from_u64(seed);
        let data = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
        Matrix { n, data }
    }

    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.data[i + j * self.n]
    }
}

/// LU factorization with partial pivoting (DGEFA). Returns the pivot
/// vector; the factors overwrite `a`. Every inner operation flows through
/// the `Vm` so the machine model prices the shrinking column sweeps.
pub fn dgefa(vm: &mut Vm, a: &mut Matrix, pivots: &mut Vec<usize>) -> Result<(), String> {
    let n = a.n;
    pivots.clear();
    for k in 0..n - 1 {
        // IDAMAX over the pivot column below the diagonal.
        let col_start = k + k * n;
        let (rel, maxv) = {
            let col = &a.data[col_start..k * n + n];
            vm.max_abs(col)
        };
        if maxv == 0.0 {
            return Err(format!("matrix is singular at column {k}"));
        }
        let piv = k + rel;
        pivots.push(piv);
        if piv != k {
            // Swap rows k and piv across all columns (stride-n access).
            for j in 0..n {
                a.data.swap(k + j * n, piv + j * n);
            }
            vm.charge_vector_op(&sxsim::VecOp::new(
                n,
                sxsim::VopClass::Logical,
                &[sxsim::Access::Stride(n), sxsim::Access::Stride(n)],
                &[sxsim::Access::Stride(n), sxsim::Access::Stride(n)],
            ));
        }
        // DSCAL: multipliers.
        let pivot_val = a.data[k + k * n];
        {
            let col = &mut a.data[k + 1 + k * n..k * n + n];
            vm.scale_in_place(col, 1.0 / pivot_val);
            // the reciprocal itself
        }
        // DAXPY update of each trailing column.
        for j in k + 1..n {
            let mult = a.data[k + j * n];
            let (lcol, rcol) = a.data.split_at_mut(j * n);
            let src = &lcol[k + 1 + k * n..k * n + n];
            let dst = &mut rcol[k + 1..n];
            vm.axpy(dst, -mult, src);
        }
    }
    if a.data[(n - 1) + (n - 1) * n] == 0.0 {
        return Err("matrix is singular at the last column".into());
    }
    Ok(())
}

/// Solve using the factors from [`dgefa`] (DGESL): forward elimination with
/// the pivots, then back substitution.
pub fn dgesl(vm: &mut Vm, a: &Matrix, pivots: &[usize], b: &mut [f64]) {
    let n = a.n;
    // `dgefa` swaps whole rows (L part included), so apply every row
    // interchange to b first, then run clean triangular solves on P*A = L*U.
    for (k, &p) in pivots.iter().enumerate() {
        b.swap(k, p);
    }
    // Forward: solve L y = P b.
    for k in 0..n - 1 {
        let bk = b[k];
        let col = &a.data[k + 1 + k * n..k * n + n];
        vm.axpy(&mut b[k + 1..n], -bk, col);
    }
    // Back substitution: apply U.
    for k in (0..n).rev() {
        b[k] /= a.at(k, k);
        vm.charge_vector_op(&sxsim::VecOp::new(
            1,
            sxsim::VopClass::Div,
            &[sxsim::Access::Stride(1)],
            &[sxsim::Access::Stride(1)],
        ));
        let bk = b[k];
        if k > 0 {
            let col = &a.data[k * n..k * n + k];
            let (head, _) = b.split_at_mut(k);
            vm.axpy(head, -bk, col);
        }
    }
}

/// One LINPACK measurement.
#[derive(Debug, Clone, Copy)]
pub struct LinpackResult {
    pub n: usize,
    pub mflops: f64,
    /// Normalized residual ||Ax - b|| / (||A|| ||x|| n eps).
    pub residual: f64,
}

/// Run the benchmark for order `n` on `model`.
pub fn linpack(model: &MachineModel, n: usize) -> LinpackResult {
    let mut vm = Vm::new(model.clone());
    let a0 = Matrix::linpack(n, 1913);
    // b = A * ones, so the exact solution is all ones.
    let mut b = vec![0.0f64; n];
    for i in 0..n {
        let mut s = 0.0;
        for j in 0..n {
            s += a0.at(i, j);
        }
        b[i] = s;
    }

    let mut a = a0.clone();
    let mut pivots = Vec::new();
    dgefa(&mut vm, &mut a, &mut pivots).expect("LINPACK matrix is nonsingular");
    dgesl(&mut vm, &a, &pivots, &mut b);

    // Residual against the known solution.
    let err = b.iter().map(|&x| (x - 1.0).abs()).fold(0.0f64, f64::max);
    let residual = err / (n as f64 * f64::EPSILON * 100.0);

    // The LINPACK convention: 2/3 n^3 + 2 n^2 operations.
    let ops = 2.0 / 3.0 * (n as f64).powi(3) + 2.0 * (n as f64).powi(2);
    let secs = vm.seconds();
    LinpackResult { n, mflops: ops / secs / 1e6, residual }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxsim::presets;

    #[test]
    fn solves_accurately() {
        let r = linpack(&presets::sx4_benchmarked(), 100);
        assert!(r.residual < 100.0, "residual {} too large", r.residual);
    }

    #[test]
    fn n1000_much_faster_than_n100_on_vector_machine() {
        // Longer columns amortize startup: the classic LINPACK spread.
        let m = presets::sx4_benchmarked();
        let small = linpack(&m, 100);
        let large = linpack(&m, 600);
        assert!(large.mflops > 1.5 * small.mflops, "{} vs {}", large.mflops, small.mflops);
    }

    #[test]
    fn sx4_beats_ymp() {
        let a = linpack(&presets::sx4_benchmarked(), 600);
        let b = linpack(&presets::cray_ymp(), 600);
        assert!(a.mflops > 2.0 * b.mflops, "{} vs {}", a.mflops, b.mflops);
    }

    #[test]
    fn singular_matrix_detected() {
        let model = presets::sx4_benchmarked();
        let mut vm = Vm::new(model);
        let n = 8;
        let mut a = Matrix { n, data: vec![0.0; n * n] };
        // Column 3 is all zeros.
        for j in 0..n {
            for i in 0..n {
                if j != 3 {
                    a.data[i + j * n] = (i * 7 + j * 3 + 1) as f64;
                }
            }
        }
        let mut piv = Vec::new();
        assert!(dgefa(&mut vm, &mut a, &mut piv).is_err());
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let model = presets::sx4_benchmarked();
        let mut vm = Vm::new(model);
        // [[0, 1], [1, 0]] needs a row swap.
        let mut a = Matrix { n: 2, data: vec![0.0, 1.0, 1.0, 0.0] };
        let mut piv = Vec::new();
        dgefa(&mut vm, &mut a, &mut piv).unwrap();
        let mut b = vec![2.0, 3.0]; // solution x = [3, 2]
        dgesl(&mut vm, &a, &piv, &mut b);
        assert!((b[0] - 3.0).abs() < 1e-12 && (b[1] - 2.0).abs() < 1e-12);
    }
}

#[cfg(test)]
mod debug_tests {
    use super::*;
    use sxsim::presets;

    #[test]
    fn small_known_system() {
        let model = presets::sx4_benchmarked();
        let mut vm = Vm::new(model);
        let n = 3;
        // A = [[2,1,1],[4,3,3],[8,7,9]] column-major
        let mut a = Matrix { n, data: vec![2.0, 4.0, 8.0, 1.0, 3.0, 7.0, 1.0, 3.0, 9.0] };
        let a0 = a.clone();
        let mut piv = Vec::new();
        dgefa(&mut vm, &mut a, &mut piv).unwrap();
        // b = A * [1,2,3]
        let x_true = [1.0, 2.0, 3.0];
        let mut b = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                b[i] += a0.at(i, j) * x_true[j];
            }
        }
        dgesl(&mut vm, &a, &piv, &mut b);
        for i in 0..n {
            assert!(
                (b[i] - x_true[i]).abs() < 1e-12,
                "x[{i}] = {} pivots {piv:?} lu {:?}",
                b[i],
                a.data
            );
        }
    }
}
