//! STREAM (McCalpin), §3.4 — the four long-vector memory operations.
//!
//! The paper contrasts STREAM with the NCAR suite: STREAM's COPY is "similar
//! to the COPY benchmark in the NCAR suite except that the array size is
//! fixed" and STREAM takes "only a single bandwidth measurement ... instead
//! of testing bandwidth for a range of array sizes", and measures no
//! irregular access at all. Implementing it here makes that comparison
//! executable.

use sxsim::{MachineModel, Vm};

/// The four STREAM operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamOp {
    /// c = a
    Copy,
    /// b = s*c
    Scale,
    /// c = a + b
    Add,
    /// a = b + s*c
    Triad,
}

impl StreamOp {
    pub const ALL: [StreamOp; 4] =
        [StreamOp::Copy, StreamOp::Scale, StreamOp::Add, StreamOp::Triad];

    pub fn name(self) -> &'static str {
        match self {
            StreamOp::Copy => "Copy",
            StreamOp::Scale => "Scale",
            StreamOp::Add => "Add",
            StreamOp::Triad => "Triad",
        }
    }

    /// Bytes counted per iteration by STREAM's convention.
    pub fn bytes_per_iter(self) -> usize {
        match self {
            StreamOp::Copy | StreamOp::Scale => 16,
            StreamOp::Add | StreamOp::Triad => 24,
        }
    }
}

/// STREAM's fixed array length (the classic 2,000,000-element default).
pub const STREAM_N: usize = 2_000_000;

/// One result row.
#[derive(Debug, Clone, Copy)]
pub struct StreamResult {
    pub op: StreamOp,
    pub mb_per_s: f64,
}

/// Run one STREAM operation of length `n` on `model`.
pub fn run_op(model: &MachineModel, op: StreamOp, n: usize) -> StreamResult {
    let mut vm = Vm::new(model.clone());
    let a: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
    let b: Vec<f64> = (0..n).map(|i| 2.0 + (i % 5) as f64).collect();
    let mut c = vec![0.0f64; n];
    let s = 3.0;
    match op {
        StreamOp::Copy => {
            vm.copy(&mut c, &a);
            assert_eq!(c[n - 1], a[n - 1]);
        }
        StreamOp::Scale => {
            vm.scale(&mut c, s, &b);
            assert_eq!(c[0], s * b[0]);
        }
        StreamOp::Add => {
            vm.add(&mut c, &a, &b);
            assert_eq!(c[0], a[0] + b[0]);
        }
        StreamOp::Triad => {
            c.copy_from_slice(&a);
            vm.axpy(&mut c, s, &b);
            assert_eq!(c[0], a[0] + s * b[0]);
        }
    }
    let secs = vm.seconds();
    StreamResult { op, mb_per_s: (op.bytes_per_iter() * n) as f64 / secs / 1e6 }
}

/// The full STREAM table at the standard size.
pub fn stream_table(model: &MachineModel) -> Vec<StreamResult> {
    StreamOp::ALL.iter().map(|&op| run_op(model, op, STREAM_N)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxsim::presets;

    #[test]
    fn sx4_sustains_multi_gb_per_s() {
        for r in stream_table(&presets::sx4_benchmarked()) {
            assert!(r.mb_per_s > 3_000.0, "{}: {} MB/s", r.op.name(), r.mb_per_s);
            assert!(r.mb_per_s < 20_000.0, "{}: beats the port", r.op.name());
        }
    }

    #[test]
    fn triad_not_faster_than_copy_in_bandwidth_terms() {
        let t = stream_table(&presets::sx4_benchmarked());
        let get = |op: StreamOp| t.iter().find(|r| r.op == op).unwrap().mb_per_s;
        // Triad moves 3 streams; with a fixed port it cannot beat copy by
        // more than the counting convention allows.
        assert!(get(StreamOp::Triad) <= 1.6 * get(StreamOp::Copy));
    }

    #[test]
    fn vector_machine_dwarfs_workstation() {
        let sx = run_op(&presets::sx4_benchmarked(), StreamOp::Triad, 200_000);
        let sp = run_op(&presets::sparc20(), StreamOp::Triad, 200_000);
        assert!(sx.mb_per_s > 50.0 * sp.mb_per_s);
    }

    #[test]
    fn ymp_between_workstation_and_sx4() {
        let sx = run_op(&presets::sx4_benchmarked(), StreamOp::Add, 200_000);
        let ymp = run_op(&presets::cray_ymp(), StreamOp::Add, 200_000);
        let sp = run_op(&presets::sparc20(), StreamOp::Add, 200_000);
        assert!(sx.mb_per_s > ymp.mb_per_s && ymp.mb_per_s > sp.mb_per_s);
    }
}
