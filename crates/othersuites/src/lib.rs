//! # othersuites — the comparison benchmarks of the paper's §3
//!
//! Before describing its own suite, the paper evaluates why the existing
//! suites were inappropriate for NCAR's procurement. Implementing them
//! makes those arguments executable:
//!
//! - [`mod@linpack`] — dense LU (order 100/1000): "tends to measure peak
//!   performance";
//! - [`mod@hint`] — hierarchical integration (QUIPS): "better tuned to
//!   measuring scalar processor performance than the performance of
//!   vector processors" (the famous Table 1 inversion);
//! - [`mod@stream`] — the four fixed-size long-vector bandwidth operations,
//!   against which the NCAR COPY's constant-volume *ladder* is the
//!   contrast.
//!
//! The NAS Parallel Benchmarks (§3.2) are pencil-and-paper specifications
//! the paper discusses but never runs; they are intentionally not built
//! (see DESIGN.md).

pub mod hint;
pub mod linpack;
pub mod linpack_tpp;
pub mod stream;

pub use hint::{hint_mquips, run_hint, HintResult};
pub use linpack::{linpack, LinpackResult};
pub use linpack_tpp::{linpack_tpp, lu_blocked};
pub use stream::{run_op, stream_table, StreamOp, StreamResult};
