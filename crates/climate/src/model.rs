//! The CCM2 proxy: an 18-level spectral-transform atmospheric model with
//! the cost structure of the paper's CCM2 (§4.7.1):
//!
//! - dry dynamics by the spherical-harmonic transform method
//!   (synthesis → grid-space products → analysis → spectral update);
//! - semi-implicit treatment of gravity waves (a per-coefficient Helmholtz
//!   solve), leapfrog time stepping with a Robert-Asselin filter and ∇⁴
//!   hyperdiffusion — all standard CCM2 ingredients;
//! - column physics built around the RADABS radiation kernel;
//! - shape-preserving semi-Lagrangian moisture transport (indirect
//!   addressing on the Gaussian grid).
//!
//! The dynamics are the rotating linearized shallow-water equations per
//! level (distinct equivalent depths) plus real zonal advection by the
//! model wind, which preserves the transform-dominated cost profile of the
//! full primitive-equation model while keeping the physics verifiable
//! (gravity-wave dispersion, mass and energy conservation are tested).
//! DESIGN.md records this substitution.
//!
//! Every phase runs partitioned across the processors of a simulated SX-4
//! node exactly as CCM2's latitude decomposition does, so fixed-size
//! scaling (Figure 8), the one-year runs (Table 5) and the ensemble test
//! (Table 6) all fall out of the same code.

use crate::physics::column_physics;
use crate::resolution::Resolution;
use crate::slt::advect_row;
use crate::spectral::SphericalTransform;
use ncar_kernels::fft::C64;
use sxsim::node::partition;
use sxsim::{
    Access, ChargeProgram, Cost, MachineModel, Node, NodeTiming, OpStats, Region, VecOp, Vm,
    VopClass,
};

/// Earth radius (m).
const EARTH_RADIUS: f64 = 6.371e6;
/// Rotation rate (1/s).
const OMEGA: f64 = 7.292e-5;

/// Model configuration.
#[derive(Debug, Clone)]
pub struct Ccm2Config {
    pub resolution: Resolution,
    /// Mean zonal wind (m/s) driving advection and the SLT.
    pub u0: f64,
    /// Include rotation (Coriolis) terms.
    pub coriolis: bool,
    /// Run the column-physics package each step.
    pub physics: bool,
    /// Transport moisture with the SLT each step.
    pub slt: bool,
    /// Robert-Asselin filter coefficient (0 disables).
    pub robert: f64,
    /// ∇⁴ hyperdiffusion coefficient (m⁴/s); 0 disables.
    pub nu4: f64,
    /// Coupling of the zonal wind to the local pressure gradient
    /// (m/s per m²/s² of dΦ/dλ); 0 makes the dynamics exactly linear.
    pub wind_feedback: f64,
    /// Advect with the spectrally recovered divergent/rotational winds
    /// (the u = ∂χ/∂λ, v = ∂ψ/∂λ halves). Off in the adiabatic
    /// configuration, where the dynamics must stay exactly linear.
    pub recovered_winds: bool,
}

impl Ccm2Config {
    /// The benchmark configuration at a given resolution: everything on,
    /// standard filter/diffusion.
    pub fn benchmark(resolution: Resolution) -> Ccm2Config {
        // Scale nu4 so the smallest retained scale damps with a fixed
        // e-folding time (the standard resolution-dependent choice).
        let t = resolution.truncation() as f64;
        let l_max = t * (t + 1.0) / (EARTH_RADIUS * EARTH_RADIUS);
        let tau = 6.0 * 3600.0; // 6-hour e-folding at the truncation limit
        Ccm2Config {
            resolution,
            u0: 20.0,
            coriolis: true,
            physics: true,
            slt: true,
            robert: 0.02,
            nu4: 1.0 / (tau * l_max * l_max),
            wind_feedback: 2e-5,
            recovered_winds: true,
        }
    }

    /// Bare dynamics (no physics/SLT/filter): used by conservation tests.
    pub fn adiabatic(resolution: Resolution) -> Ccm2Config {
        Ccm2Config {
            resolution,
            u0: 0.0,
            coriolis: false,
            physics: false,
            slt: false,
            robert: 0.0,
            nu4: 0.0,
            wind_feedback: 0.0,
            recovered_winds: false,
        }
    }
}

/// Spectral state of one prognostic field across levels: `[lev][nspec]`.
pub type LevSpec = Vec<Vec<C64>>;

/// The model.
pub struct Ccm2Proxy {
    pub config: Ccm2Config,
    pub transform: SphericalTransform,
    machine: MachineModel,
    /// Equivalent depths Φ̄_k (m²/s²), decreasing with level index.
    pub phibar: Vec<f64>,
    // Leapfrog state: previous and current time levels.
    zeta_prev: LevSpec,
    zeta: LevSpec,
    delta_prev: LevSpec,
    delta: LevSpec,
    phi_prev: LevSpec,
    phi: LevSpec,
    /// Grid moisture per level: `[lev][lat*nlon + lon]`.
    pub q: Vec<Vec<f64>>,
    /// Steps taken.
    pub steps: usize,
    /// Lifetime op statistics absorbed from every internal `Vm` (the
    /// model creates one per simulated processor per phase); feeds the
    /// perf harness and PROGINF-style reporting.
    op_stats: OpStats,
}

/// Borrowed view of the full prognostic state (both leapfrog levels).
#[derive(Debug)]
pub struct Ccm2State<'a> {
    pub phi: &'a LevSpec,
    pub phi_prev: &'a LevSpec,
    pub delta: &'a LevSpec,
    pub delta_prev: &'a LevSpec,
    pub zeta: &'a LevSpec,
    pub zeta_prev: &'a LevSpec,
    pub q: &'a Vec<Vec<f64>>,
}

/// The recorded charge structure of one timestep: every parallel phase's
/// per-processor charge sequence in [`ChargeProgram`] form.
///
/// A step's charges depend only on the configuration and grid shapes,
/// never on the field values, so one recorded step stands for every step:
/// [`Ccm2Proxy::replay_step`] re-charges the whole program in a batched
/// pass whose [`StepTiming`] is **bit-identical** to the recording step's,
/// without re-executing any of the functional math.
#[derive(Debug, Clone)]
pub struct StepProgram {
    procs: usize,
    nodes: usize,
    /// One program per processor chunk of the latitude partition (empty
    /// program for an empty chunk).
    phase1: Vec<ChargeProgram>,
    /// One program per processor chunk of the spectral partition.
    phase3: Vec<ChargeProgram>,
}

impl StepProgram {
    /// Total charge calls across all phases (what the op-by-op loop would
    /// have issued); `total_charges() / instructions()` is the compression
    /// the run-length coalescing bought.
    pub fn total_charges(&self) -> usize {
        self.phase1.iter().chain(&self.phase3).map(ChargeProgram::total_charges).sum()
    }

    /// Instructions in the compact IR across all phases.
    pub fn instructions(&self) -> usize {
        self.phase1.iter().chain(&self.phase3).map(ChargeProgram::len).sum()
    }
}

/// Timing of one step on a node.
#[derive(Debug, Clone, Copy)]
pub struct StepTiming {
    pub timing: NodeTiming,
    /// Wall seconds of the step on the simulated machine.
    pub seconds: f64,
    /// Average per-processor memory demand, bytes/cycle (for co-scheduling).
    pub bytes_per_cycle_per_proc: f64,
}

impl Ccm2Proxy {
    /// Build the model on `machine` with a deterministic balanced initial
    /// state: a mid-latitude geopotential anomaly per level plus a smooth
    /// moisture distribution.
    pub fn new(config: Ccm2Config, machine: MachineModel) -> Ccm2Proxy {
        let res = config.resolution;
        let mut transform = SphericalTransform::new(res.truncation(), res.nlat(), res.nlon());
        let nspec = transform.nspec();
        let nlev = res.nlev();
        // The model drives its transforms with several fields/levels fused
        // into the vector dimension (CCM2's slab vectorization). Full
        // 18-level fusion would make every vector ~1000 elements and erase
        // Figure 8's short-vector effects; the production code fused a few
        // fields at a time.
        transform.fused_transforms = 6;

        // Equivalent depths from the vertical normal-mode decomposition of
        // the 18-level structure operator (see `vertical`): one deep
        // external mode, successively shallower internal modes.
        let phibar = crate::vertical::equivalent_depths(nlev);

        let zeros = || vec![vec![C64::ZERO; nspec]; nlev];
        let mut phi = zeros();
        for (k, lev) in phi.iter_mut().enumerate() {
            // A large-scale anomaly in a few low modes, level-staggered.
            let amp = 120.0 / (1.0 + k as f64 * 0.3);
            lev[transform.index(0, 2)] = C64::new(amp, 0.0);
            if res.truncation() >= 4 {
                lev[transform.index(2, 3)] = C64::new(0.4 * amp, 0.25 * amp);
                lev[transform.index(1, 4)] = C64::new(-0.3 * amp, 0.1 * amp);
            }
        }

        // Moisture: wet tropics, dry poles, zonal ripple.
        let (nlat, nlon) = (res.nlat(), res.nlon());
        let mut q = vec![vec![0.0f64; nlat * nlon]; nlev];
        for (k, lev) in q.iter_mut().enumerate() {
            let scale = ((k + 1) as f64 / nlev as f64).powi(2); // moist near surface
            for l in 0..nlat {
                let mu = transform.mu[l];
                for j in 0..nlon {
                    let lambda = 2.0 * std::f64::consts::PI * j as f64 / nlon as f64;
                    lev[l * nlon + j] =
                        scale * 0.02 * (1.0 - mu * mu) * (1.0 + 0.3 * (2.0 * lambda).cos());
                }
            }
        }

        Ccm2Proxy {
            config,
            transform,
            machine,
            phibar,
            zeta_prev: zeros(),
            zeta: zeros(),
            delta_prev: zeros(),
            delta: zeros(),
            phi_prev: phi.clone(),
            phi,
            q,
            steps: 0,
            op_stats: OpStats::default(),
        }
    }

    /// Lifetime operation statistics accumulated across every internal
    /// `Vm` of every step so far (vector ops charged, elements, cycles).
    pub fn op_stats(&self) -> OpStats {
        self.op_stats
    }

    /// Timestep in seconds.
    pub fn dt(&self) -> f64 {
        self.config.resolution.timestep_minutes() * 60.0
    }

    /// The spectral geopotential of level `k` (for diagnostics).
    pub fn phi_level(&self, k: usize) -> Vec<ncar_kernels::fft::C64> {
        self.phi[k].clone()
    }

    /// Global mean geopotential (the mass invariant), from the (0,0) mode
    /// of level `k`.
    pub fn mean_phi(&self, k: usize) -> f64 {
        // synthesize of a_00 alone: f = a_00 * P̄_0^0 = a_00 * sqrt(1/2)
        self.phi[k][self.transform.index(0, 0)].re * (0.5f64).sqrt()
    }

    /// Total gravity-wave energy of level `k`:
    /// Σ |Φ|²/Φ̄ + Σ |δ|² a²/(n(n+1)); exactly conserved by the continuous
    /// linear system when rotation, advection and forcing are off.
    pub fn energy(&self, k: usize) -> f64 {
        let t = &self.transform;
        let mut e = 0.0;
        for m in 0..=t.trunc {
            let w = if m == 0 { 1.0 } else { 2.0 }; // conjugate pairs
            for n in m..=t.trunc {
                let i = t.index(m, n);
                let phi2 = self.phi[k][i].norm_sqr();
                e += w * phi2 / self.phibar[k];
                if n > 0 {
                    let l = n as f64 * (n as f64 + 1.0) / (EARTH_RADIUS * EARTH_RADIUS);
                    e += w * self.delta[k][i].norm_sqr() / l;
                }
            }
        }
        e
    }

    /// Global moisture inventory (area-weighted mean of q over the grid).
    pub fn total_moisture(&self) -> f64 {
        let t = &self.transform;
        let mut total = 0.0;
        for lev in &self.q {
            for l in 0..t.nlat {
                let w = t.weights[l];
                let row = &lev[l * t.nlon..(l + 1) * t.nlon];
                total += w * row.iter().sum::<f64>() / t.nlon as f64;
            }
        }
        total
    }

    /// Advance one timestep on `procs` processors of the node; returns the
    /// node timing of the step.
    pub fn step(&mut self, procs: usize) -> StepTiming {
        assert!(procs >= 1 && procs <= self.machine.procs);
        self.step_inner(procs, 1, None, None)
    }

    /// Advance one timestep on `procs` processors while recording every
    /// `Vm`'s charge sequence into a [`StepProgram`]. The recorded step's
    /// timing is bit-identical to [`Ccm2Proxy::step`]'s; the program can
    /// then be handed to [`Ccm2Proxy::replay_step`] any number of times.
    pub fn record_step_program(&mut self, procs: usize) -> (StepTiming, StepProgram) {
        assert!(procs >= 1 && procs <= self.machine.procs);
        let mut program = StepProgram { procs, nodes: 1, phase1: Vec::new(), phase3: Vec::new() };
        let timing = self.step_inner(procs, 1, None, Some(&mut program));
        (timing, program)
    }

    /// Re-charge a recorded step in one batched pass: bit-identical
    /// [`StepTiming`] (ledgers, wall cycles, seconds) to the step that
    /// recorded `program`, at a fraction of the cost — no synthesis, no
    /// physics, no transport is re-executed, only the charge stream.
    ///
    /// Op statistics accumulate into [`Ccm2Proxy::op_stats`] exactly as a
    /// real step's would (plus the program-replay counters); the
    /// prognostic state and the step counter are untouched.
    pub fn replay_step(&mut self, program: &StepProgram) -> StepTiming {
        let res = self.config.resolution;
        let (nlev, nspec) = (res.nlev(), self.transform.nspec());
        let (procs, nodes) = (program.procs, program.nodes);
        let mut regions: Vec<Region> = Vec::new();

        // Phase 1 and phase 3 replay their recorded programs against fresh
        // `Vm`s, mirroring the one-`Vm`-per-chunk lifetimes of `step_inner`
        // (the memo accounting is part of the bit-identity contract).
        let mut phase1 = Vec::with_capacity(procs);
        for prog in &program.phase1 {
            if prog.is_empty() {
                phase1.push(Cost::ZERO);
                continue;
            }
            let mut vm = Vm::new(self.machine.clone());
            vm.replay_program(prog);
            self.op_stats.add(vm.stats());
            phase1.push(vm.take_cost());
        }
        regions.push(Region::Parallel(phase1));

        // Phase 2 is already pure charging (no functional math shadows it),
        // so the reduction is re-issued verbatim.
        if procs > 1 {
            let words = 3 * nlev * nspec * 2;
            let rounds = (procs as f64).log2().ceil() as usize;
            let mut per_proc = vec![Cost::ZERO; procs];
            for round in 0..rounds {
                let live = (procs >> round).max(2);
                let adders = live / 2;
                for p in per_proc.iter_mut().take(adders) {
                    let mut vm = Vm::new(self.machine.clone());
                    vm.charge_vector_op(&VecOp::new(
                        words,
                        VopClass::Add,
                        &[Access::Stride(1), Access::Stride(1)],
                        &[Access::Stride(1)],
                    ));
                    self.op_stats.add(vm.stats());
                    p.add(vm.take_cost());
                }
            }
            regions.push(Region::Parallel(per_proc));
        }

        let mut phase3 = Vec::with_capacity(procs);
        for prog in &program.phase3 {
            if prog.is_empty() {
                phase3.push(Cost::ZERO);
                continue;
            }
            let mut vm = Vm::new(self.machine.clone());
            vm.replay_program(prog);
            self.op_stats.add(vm.stats());
            phase3.push(vm.take_cost());
        }
        regions.push(Region::Parallel(phase3));

        self.time_step_regions(&regions, procs, nodes)
    }

    /// Advance one timestep on `procs` processors while collecting an
    /// FTRACE phase breakdown (regions are recorded on processor 0's
    /// chunk, which is representative).
    pub fn step_traced(&mut self, procs: usize) -> (StepTiming, sxsim::Ftrace) {
        let mut ft = sxsim::Ftrace::new();
        let t = self.step_inner(procs, 1, Some(&mut ft), None);
        (t, ft)
    }

    /// Advance one timestep on a multi-node system: `nodes` SX-4 nodes of
    /// `procs_per_node` processors each, coupled by the IXS. Between the
    /// grid-space phase and the spectral update, the partial quadrature
    /// sums cross the crossbar as an all-to-all exchange, and every
    /// barrier becomes an internode barrier — the cost structure of the
    /// SX-4/512 direction the paper's architecture section describes.
    pub fn step_multinode(&mut self, nodes: usize, procs_per_node: usize) -> StepTiming {
        assert!((1..=16).contains(&nodes));
        assert!(procs_per_node >= 1 && procs_per_node <= self.machine.procs);
        self.step_inner(nodes * procs_per_node, nodes, None, None)
    }

    fn step_inner(
        &mut self,
        procs: usize,
        nodes: usize,
        mut ftrace: Option<&mut sxsim::Ftrace>,
        mut record: Option<&mut StepProgram>,
    ) -> StepTiming {
        let t = self.transform.clone();
        let res = self.config.resolution;
        let (nlat, nlon, nlev) = (res.nlat(), res.nlon(), res.nlev());
        let nspec = t.nspec();
        let dt = self.dt();
        let two_dt = if self.steps == 0 { dt } else { 2.0 * dt }; // forward first step
        let chunks = partition(nlat, procs);

        let mut regions: Vec<Region> = Vec::new();

        // ---- Phase 1 (parallel over latitude): synthesis, grid-space
        // tendencies, physics, SLT, and partial analysis. ------------------
        let mut tend_zeta: LevSpec = vec![vec![C64::ZERO; nspec]; nlev];
        let mut tend_delta: LevSpec = vec![vec![C64::ZERO; nspec]; nlev];
        let mut tend_phi: LevSpec = vec![vec![C64::ZERO; nspec]; nlev];
        let mut phase1 = Vec::with_capacity(procs);

        for (chunk_idx, chunk) in chunks.iter().enumerate() {
            let mut vm = Vm::new(self.machine.clone());
            if chunk.is_empty() {
                if let Some(rec) = record.as_deref_mut() {
                    rec.phase1.push(ChargeProgram::new());
                }
                phase1.push(Cost::ZERO);
                continue;
            }
            if record.is_some() {
                vm.start_program_record();
            }
            // FTRACE instruments processor 0's chunk only.
            let mut trace = if chunk_idx == 0 { ftrace.as_deref_mut() } else { None };
            for k in 0..nlev {
                // Synthesize the prognostic fields and their zonal
                // derivatives on this processor's latitude rows.
                let mut zeta_g = vec![0.0; nlat * nlon];
                let mut delta_g = vec![0.0; nlat * nlon];
                let mut phi_g = vec![0.0; nlat * nlon];
                let mut dzeta_g = vec![0.0; nlat * nlon];
                let mut ddelta_g = vec![0.0; nlat * nlon];
                let mut dphi_g = vec![0.0; nlat * nlon];
                if let Some(ft) = trace.as_deref_mut() {
                    ft.enter("synthesis", &mut vm).expect("no region is open");
                }
                t.synthesize_partial(&mut vm, &self.zeta[k], &mut zeta_g, chunk.clone());
                t.synthesize_partial(&mut vm, &self.delta[k], &mut delta_g, chunk.clone());
                t.synthesize_partial(&mut vm, &self.phi[k], &mut phi_g, chunk.clone());
                let ddl = |spec: &[C64]| -> Vec<C64> {
                    let mut d = vec![C64::ZERO; nspec];
                    for m in 0..=t.trunc {
                        for n in m..=t.trunc {
                            let i = t.index(m, n);
                            let a = spec[i];
                            d[i] = C64::new(-(m as f64) * a.im, m as f64 * a.re);
                            // i*m*a
                        }
                    }
                    d
                };
                t.synthesize_partial(&mut vm, &ddl(&self.zeta[k]), &mut dzeta_g, chunk.clone());
                t.synthesize_partial(&mut vm, &ddl(&self.delta[k]), &mut ddelta_g, chunk.clone());
                t.synthesize_partial(&mut vm, &ddl(&self.phi[k]), &mut dphi_g, chunk.clone());

                // Spectral wind recovery (the zonal-derivative halves): the
                // divergent zonal wind from the velocity potential
                // chi = inv-Laplacian(delta), and the rotational meridional
                // wind from the streamfunction psi = inv-Laplacian(zeta).
                let invlap = |spec: &[C64]| -> Vec<C64> {
                    let mut out = vec![C64::ZERO; nspec];
                    for m in 0..=t.trunc {
                        for n in m.max(1)..=t.trunc {
                            let i = t.index(m, n);
                            let l = n as f64 * (n as f64 + 1.0) / (EARTH_RADIUS * EARTH_RADIUS);
                            out[i] = spec[i] * (-1.0 / l);
                        }
                    }
                    out
                };
                let mut u_div_g = vec![0.0; nlat * nlon];
                let mut v_rot_g = vec![0.0; nlat * nlon];
                t.synthesize_partial(
                    &mut vm,
                    &ddl(&invlap(&self.delta[k])),
                    &mut u_div_g,
                    chunk.clone(),
                );
                t.synthesize_partial(
                    &mut vm,
                    &ddl(&invlap(&self.zeta[k])),
                    &mut v_rot_g,
                    chunk.clone(),
                );

                if let Some(ft) = trace.as_deref_mut() {
                    ft.exit(&mut vm).expect("region is open");
                    ft.enter("grid tendencies", &mut vm).expect("no region is open");
                }
                // Grid-space tendencies on the chunk's rows.
                let mut g_zeta = vec![0.0; nlat * nlon];
                let mut g_delta = vec![0.0; nlat * nlon];
                let mut g_phi = vec![0.0; nlat * nlon];
                for l in chunk.clone() {
                    let mu = t.mu[l];
                    let cos_phi = (1.0 - mu * mu).max(1e-6).sqrt();
                    let f_cor = if self.config.coriolis { 2.0 * OMEGA * mu } else { 0.0 };
                    let row = l * nlon;
                    // State-dependent zonal wind: mean flow + a weak
                    // pressure-gradient response.
                    // The Eulerian tendencies advect with the stable
                    // mean-flow wind (leapfrog cannot take the full
                    // recovered-wind feedback); the recovered winds drive
                    // the semi-Lagrangian transport below, which is
                    // unconditionally stable.
                    for j in 0..nlon {
                        let i = row + j;
                        let inv = 1.0 / (EARTH_RADIUS * cos_phi);
                        let u = self.config.u0 * cos_phi - self.config.wind_feedback * dphi_g[i];
                        g_zeta[i] = -u * dzeta_g[i] * inv - f_cor * delta_g[i];
                        g_delta[i] = -u * ddelta_g[i] * inv + f_cor * zeta_g[i];
                        g_phi[i] = -u * dphi_g[i] * inv;
                    }
                    // Charge the pointwise tendency arithmetic: the full
                    // momentum/energy product set (~24 fused ops per row).
                    vm.charge_vector_op_repeated(
                        &VecOp::new(
                            nlon,
                            VopClass::Fma,
                            &[Access::Stride(1), Access::Stride(1)],
                            &[Access::Stride(1)],
                        ),
                        24,
                    );
                }

                if let Some(ft) = trace.as_deref_mut() {
                    ft.exit(&mut vm).expect("region is open");
                    ft.enter("physics", &mut vm).expect("no region is open");
                }
                // Physics (level-mean forcing computed once, on k == 0).
                if self.config.physics && k == 0 {
                    let ncol_local = chunk.len() * nlon;
                    let mut phi_cols = Vec::with_capacity(ncol_local);
                    let mut q_cols = Vec::with_capacity(ncol_local);
                    for l in chunk.clone() {
                        phi_cols.extend_from_slice(&phi_g[l * nlon..(l + 1) * nlon]);
                        q_cols.extend_from_slice(&self.q[nlev - 1][l * nlon..(l + 1) * nlon]);
                    }
                    let ph = column_physics(&mut vm, &phi_cols, &q_cols, nlev);
                    for (ci, l) in chunk.clone().enumerate() {
                        for j in 0..nlon {
                            let h = ph.heating[ci * nlon + j] / dt;
                            g_phi[l * nlon + j] += h;
                            self.q[nlev - 1][l * nlon + j] = (self.q[nlev - 1][l * nlon + j]
                                + ph.moistening[ci * nlon + j])
                                .max(0.0);
                        }
                    }
                }

                if let Some(ft) = trace.as_deref_mut() {
                    ft.exit(&mut vm).expect("region is open");
                    ft.enter("SLT transport", &mut vm).expect("no region is open");
                }
                // SLT moisture transport: a zonal pass along the chunk's
                // rows, then a (weak) meridional correction pass using the
                // recovered rotational wind — CCM2's transport is fully 2-D
                // on the sphere.
                if self.config.slt {
                    for l in chunk.clone() {
                        let mu = t.mu[l];
                        let cos_phi = (1.0 - mu * mu).max(1e-6).sqrt();
                        let scale = dt * nlon as f64
                            / (2.0 * std::f64::consts::PI * EARTH_RADIUS * cos_phi);
                        // Recovered winds enter tapered by cos^2(phi), which
                        // cancels the polar 1/cos factors.
                        let wgt = if self.config.recovered_winds { cos_phi * cos_phi } else { 0.0 };
                        let u_cells: Vec<f64> = (0..nlon)
                            .map(|j| {
                                let i = l * nlon + j;
                                let inv = 1.0 / (EARTH_RADIUS * cos_phi);
                                let u = self.config.u0 * cos_phi
                                    + (wgt * u_div_g[i] * inv).clamp(-40.0, 40.0)
                                    - self.config.wind_feedback * dphi_g[i];
                                u * scale
                            })
                            .collect();
                        let row = &self.q[k][l * nlon..(l + 1) * nlon];
                        let new_row = advect_row(&mut vm, row, &u_cells);
                        self.q[k][l * nlon..(l + 1) * nlon].copy_from_slice(&new_row);
                        // Meridional pass (bounded displacement along the row
                        // as a proxy for the cross-row sweep the full 2-D
                        // scheme performs; same gather/interpolate cost).
                        let v_cells: Vec<f64> = (0..nlon)
                            .map(|j| {
                                let v = (wgt * v_rot_g[l * nlon + j] / (EARTH_RADIUS * cos_phi))
                                    .clamp(-40.0, 40.0);
                                (v * dt * nlon as f64
                                    / (2.0 * std::f64::consts::PI * EARTH_RADIUS * cos_phi))
                                    .clamp(-2.0, 2.0)
                            })
                            .collect();
                        let row = &self.q[k][l * nlon..(l + 1) * nlon];
                        let new_row = advect_row(&mut vm, row, &v_cells);
                        self.q[k][l * nlon..(l + 1) * nlon].copy_from_slice(&new_row);
                    }
                }

                if let Some(ft) = trace.as_deref_mut() {
                    ft.exit(&mut vm).expect("region is open");
                    ft.enter("analysis", &mut vm).expect("no region is open");
                }
                // Partial analysis of the tendencies.
                let pz = t.analyze_partial(&mut vm, &g_zeta, chunk.clone());
                let pd = t.analyze_partial(&mut vm, &g_delta, chunk.clone());
                let pp = t.analyze_partial(&mut vm, &g_phi, chunk.clone());
                for i in 0..nspec {
                    tend_zeta[k][i] = tend_zeta[k][i] + pz[i];
                    tend_delta[k][i] = tend_delta[k][i] + pd[i];
                    tend_phi[k][i] = tend_phi[k][i] + pp[i];
                }
                if let Some(ft) = trace.as_deref_mut() {
                    ft.exit(&mut vm).expect("region is open");
                }
            }
            self.op_stats.add(vm.stats());
            if let Some(rec) = record.as_deref_mut() {
                rec.phase1.push(vm.take_program().expect("recording was started above"));
            }
            phase1.push(vm.take_cost());
        }
        regions.push(Region::Parallel(phase1));

        // ---- Phase 2: reduction of the partial spectral sums. Each of the
        // log2(P) rounds halves the live partials; within a round the adds
        // are spread across the processors (the coefficient range is
        // chunked), so the reduction is a short parallel phase with a
        // barrier per round, not an Amdahl wall. ----------------------------
        if procs > 1 {
            let words = 3 * nlev * nspec * 2;
            let rounds = (procs as f64).log2().ceil() as usize;
            let mut per_proc = vec![Cost::ZERO; procs];
            for round in 0..rounds {
                let live = (procs >> round).max(2);
                let adders = live / 2;
                for p in per_proc.iter_mut().take(adders) {
                    let mut vm = Vm::new(self.machine.clone());
                    vm.charge_vector_op(&VecOp::new(
                        words,
                        VopClass::Add,
                        &[Access::Stride(1), Access::Stride(1)],
                        &[Access::Stride(1)],
                    ));
                    self.op_stats.add(vm.stats());
                    p.add(vm.take_cost());
                }
            }
            regions.push(Region::Parallel(per_proc));
        }

        // ---- Phase 3 (parallel over spectral space): semi-implicit solve,
        // leapfrog update, Robert filter, hyperdiffusion. -------------------
        let spec_chunks = partition(nspec, procs);
        let mut phase3 = Vec::with_capacity(procs);
        let mut new_zeta = self.zeta_prev.clone();
        let mut new_delta = self.delta_prev.clone();
        let mut new_phi = self.phi_prev.clone();

        // n(n+1)/a² per packed index.
        let lap: Vec<f64> = {
            let mut v = vec![0.0; nspec];
            for m in 0..=t.trunc {
                for n in m..=t.trunc {
                    v[t.index(m, n)] = n as f64 * (n as f64 + 1.0) / (EARTH_RADIUS * EARTH_RADIUS);
                }
            }
            v
        };

        for (sc_idx, sc) in spec_chunks.iter().enumerate() {
            let mut vm = Vm::new(self.machine.clone());
            if sc.is_empty() {
                if let Some(rec) = record.as_deref_mut() {
                    rec.phase3.push(ChargeProgram::new());
                }
                phase3.push(Cost::ZERO);
                continue;
            }
            if record.is_some() {
                vm.start_program_record();
            }
            let mut trace = if sc_idx == 0 { ftrace.as_deref_mut() } else { None };
            if let Some(ft) = trace.as_deref_mut() {
                ft.enter("semi-implicit solve", &mut vm).expect("no region is open");
            }
            for k in 0..nlev {
                let pb = self.phibar[k];
                for i in sc.clone() {
                    let l = lap[i];
                    // Semi-implicit leapfrog (see module docs).
                    let a = self.phi_prev[k][i] + tend_phi[k][i] * two_dt
                        - self.delta_prev[k][i] * (0.5 * two_dt * pb);
                    let b = self.delta_prev[k][i]
                        + tend_delta[k][i] * two_dt
                        + self.phi_prev[k][i] * (0.5 * two_dt * l);
                    let denom = 1.0 + 0.25 * two_dt * two_dt * l * pb;
                    let d_new = (b + a * (0.5 * two_dt * l)) * (1.0 / denom);
                    let p_new = a - d_new * (0.5 * two_dt * pb);
                    let z_new = self.zeta_prev[k][i] + tend_zeta[k][i] * two_dt;

                    // Hyperdiffusion (implicit).
                    let damp = 1.0 / (1.0 + two_dt * self.config.nu4 * l * l);
                    new_zeta[k][i] = z_new * damp;
                    new_delta[k][i] = d_new * damp;
                    new_phi[k][i] = p_new * damp;
                }
                // Charge the per-coefficient update: ~24 fused ops + one
                // divide sweep over the chunk.
                vm.charge_vector_op_repeated(
                    &VecOp::new(
                        sc.len(),
                        VopClass::Fma,
                        &[Access::Stride(1), Access::Stride(1)],
                        &[Access::Stride(1)],
                    ),
                    24,
                );
                vm.charge_vector_op(&VecOp::new(
                    sc.len(),
                    VopClass::Div,
                    &[Access::Stride(1)],
                    &[Access::Stride(1)],
                ));
            }
            if let Some(ft) = trace {
                ft.exit(&mut vm).expect("region is open");
            }
            self.op_stats.add(vm.stats());
            if let Some(rec) = record.as_deref_mut() {
                rec.phase3.push(vm.take_program().expect("recording was started above"));
            }
            phase3.push(vm.take_cost());
        }
        regions.push(Region::Parallel(phase3));

        // Robert-Asselin filter on the time level being retired, then shift.
        let eps = self.config.robert;
        for k in 0..nlev {
            for i in 0..nspec {
                let filt = |prev: C64, cur: C64, next: C64| {
                    if eps == 0.0 {
                        cur
                    } else {
                        cur + (next - cur * 2.0 + prev) * eps
                    }
                };
                let zf = filt(self.zeta_prev[k][i], self.zeta[k][i], new_zeta[k][i]);
                let df = filt(self.delta_prev[k][i], self.delta[k][i], new_delta[k][i]);
                let pf = filt(self.phi_prev[k][i], self.phi[k][i], new_phi[k][i]);
                self.zeta_prev[k][i] = zf;
                self.delta_prev[k][i] = df;
                self.phi_prev[k][i] = pf;
            }
        }
        // The filter loop left the filtered time level t in *_prev; the
        // freshly computed level t+1 becomes the current state.
        self.zeta = new_zeta;
        self.delta = new_delta;
        self.phi = new_phi;

        self.steps += 1;

        self.time_step_regions(&regions, procs, nodes)
    }

    /// Time a step's regions on the node — the shared tail of
    /// [`Ccm2Proxy::step_inner`] and [`Ccm2Proxy::replay_step`]. For a
    /// multi-node system each node brings its own memory banks and
    /// crossbar, so capacity scales with `nodes`; the IXS adds the
    /// tendency all-to-all and internode barriers.
    fn time_step_regions(&self, regions: &[Region], procs: usize, nodes: usize) -> StepTiming {
        let res = self.config.resolution;
        let (nlev, nspec) = (res.nlev(), self.transform.nspec());
        let mut timing_machine = self.machine.clone();
        if nodes > 1 {
            timing_machine.procs *= nodes;
            timing_machine.memory.banks *= nodes;
            timing_machine.node_bytes_per_cycle *= nodes as f64;
        }
        let clock_ns = timing_machine.clock_ns;
        let node = Node::new(timing_machine);
        let mut timing =
            node.time_regions(regions).expect("partitioned within the node's processor count");
        if nodes > 1 {
            let ixs = sxsim::Ixs::new(nodes);
            // The 3 tendency fields' partial sums cross the crossbar, split
            // evenly between node pairs, plus one internode barrier per
            // phase boundary.
            let tendency_bytes = (3 * nlev * nspec * 16) as u64;
            let per_pair = tendency_bytes / (nodes * nodes) as u64;
            let exchange_s = ixs.all_to_all_seconds(per_pair) + 2.0 * ixs.barrier_seconds();
            timing.wall_cycles += exchange_s / (clock_ns * 1e-9);
        }
        let seconds = timing.seconds(self.machine.clock_ns);
        let bpc = if timing.wall_cycles > 0.0 {
            timing.work.bytes as f64 / timing.wall_cycles / procs as f64
        } else {
            0.0
        };
        StepTiming { timing, seconds, bytes_per_cycle_per_proc: bpc }
    }

    /// Full prognostic state access for checkpoint/restart: the current
    /// and previous leapfrog time levels of each spectral field.
    pub fn state(&self) -> Ccm2State<'_> {
        Ccm2State {
            phi: &self.phi,
            phi_prev: &self.phi_prev,
            delta: &self.delta,
            delta_prev: &self.delta_prev,
            zeta: &self.zeta,
            zeta_prev: &self.zeta_prev,
            q: &self.q,
        }
    }

    /// Restore the full prognostic state (checkpoint/restart).
    #[allow(clippy::too_many_arguments)]
    pub fn set_state(
        &mut self,
        phi: LevSpec,
        phi_prev: LevSpec,
        delta: LevSpec,
        delta_prev: LevSpec,
        zeta: LevSpec,
        zeta_prev: LevSpec,
        q: Vec<Vec<f64>>,
        steps: usize,
    ) {
        let nspec = self.transform.nspec();
        let nlev = self.config.resolution.nlev();
        for f in [&phi, &phi_prev, &delta, &delta_prev, &zeta, &zeta_prev] {
            assert_eq!(f.len(), nlev);
            assert!(f.iter().all(|l| l.len() == nspec));
        }
        self.phi = phi;
        self.phi_prev = phi_prev;
        self.delta = delta;
        self.delta_prev = delta_prev;
        self.zeta = zeta;
        self.zeta_prev = zeta_prev;
        self.q = q;
        self.steps = steps;
    }

    /// History-tape bytes written per model day: the daily average fields
    /// (3 prognostics + moisture, all levels) in 64-bit words plus header.
    /// At T63 this yields the ~15 GB/year the paper reports for Table 5.
    pub fn history_bytes_per_day(&self) -> u64 {
        let res = self.config.resolution;
        // Daily-average history: eight 3D fields plus sixteen 2D
        // diagnostics; plus the day's restart record (six 3D fields).
        let history = 8 * res.nlev() + 16;
        let restart = 6 * res.nlev();
        ((history + restart) * res.ncols() * 8 + 64 * 1024) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxsim::presets;

    /// A tiny but alias-free test resolution wrapper: use T42 for structure
    /// tests (smallest Table 4 resolution) but few steps.
    fn small_model(config_fn: fn(Resolution) -> Ccm2Config) -> Ccm2Proxy {
        Ccm2Proxy::new(config_fn(Resolution::T42), presets::sx4_benchmarked())
    }

    #[test]
    fn mass_is_conserved_adiabatically() {
        let mut m = small_model(Ccm2Config::adiabatic);
        let before = m.mean_phi(0);
        for _ in 0..10 {
            m.step(4);
        }
        let after = m.mean_phi(0);
        assert!((after - before).abs() < 1e-9 * before.abs().max(1.0), "{before} -> {after}");
    }

    #[test]
    fn energy_conserved_by_linear_gravity_waves() {
        let mut m = small_model(Ccm2Config::adiabatic);
        let e0: f64 = (0..3).map(|k| m.energy(k)).sum();
        for _ in 0..20 {
            m.step(2);
        }
        let e1: f64 = (0..3).map(|k| m.energy(k)).sum();
        assert!((e1 - e0).abs() < 0.02 * e0, "gravity-wave energy drifted: {e0} -> {e1}");
    }

    #[test]
    fn gravity_wave_frequency_matches_dispersion() {
        // Put all signal in one mode and time the delta oscillation.
        let mut m = small_model(Ccm2Config::adiabatic);
        let t = m.transform.clone();
        let nspec = t.nspec();
        for k in 0..m.phibar.len() {
            m.phi[k] = vec![C64::ZERO; nspec];
            m.phi_prev[k] = vec![C64::ZERO; nspec];
            m.zeta[k] = vec![C64::ZERO; nspec];
            m.zeta_prev[k] = vec![C64::ZERO; nspec];
            m.delta[k] = vec![C64::ZERO; nspec];
            m.delta_prev[k] = vec![C64::ZERO; nspec];
        }
        let idx = t.index(0, 3);
        m.phi[0][idx] = C64::new(10.0, 0.0);
        m.phi_prev[0][idx] = C64::new(10.0, 0.0);

        let n = 3.0f64;
        let l = n * (n + 1.0) / (EARTH_RADIUS * EARTH_RADIUS);
        let omega = (l * m.phibar[0]).sqrt();
        let period = 2.0 * std::f64::consts::PI / omega;
        let dt = m.dt();

        // Track phi sign changes over a bit more than one period.
        let mut crossings = Vec::new();
        let mut last = m.phi[0][idx].re;
        let steps = (1.3 * period / dt) as usize;
        for s in 0..steps {
            m.step(1);
            let cur = m.phi[0][idx].re;
            if last.signum() != cur.signum() && cur != 0.0 {
                crossings.push(s);
            }
            last = cur;
        }
        assert!(crossings.len() >= 2, "no oscillation observed");
        // Half-period from successive crossings.
        let diffs: Vec<f64> = crossings.windows(2).map(|w| (w[1] - w[0]) as f64 * dt).collect();
        let mean_half: f64 = diffs.iter().sum::<f64>() / diffs.len() as f64;
        let measured_period = 2.0 * mean_half;
        let rel = (measured_period - period).abs() / period;
        assert!(rel < 0.12, "period {measured_period} vs dispersion {period} (rel {rel})");
    }

    #[test]
    fn stable_over_a_simulated_day_with_everything_on() {
        let mut m = small_model(Ccm2Config::benchmark);
        let steps = Resolution::T42.steps_per_day() / 4; // 6 hours
        for _ in 0..steps {
            m.step(8);
        }
        let max_phi = m.phi.iter().flat_map(|l| l.iter()).map(|c| c.abs()).fold(0.0f64, f64::max);
        assert!(max_phi.is_finite() && max_phi < 1e4, "model blew up: {max_phi}");
        assert!(m.q.iter().flat_map(|l| l.iter()).all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn moisture_inventory_roughly_conserved_without_physics() {
        let mut cfg = Ccm2Config::benchmark(Resolution::T42);
        cfg.physics = false; // no precipitation sink
        let mut m = Ccm2Proxy::new(cfg, presets::sx4_benchmarked());
        let before = m.total_moisture();
        for _ in 0..10 {
            m.step(4);
        }
        let after = m.total_moisture();
        assert!((after - before).abs() < 0.05 * before, "{before} -> {after}");
    }

    #[test]
    fn step_timing_independent_of_partitioning_in_total_work() {
        let mut a = small_model(Ccm2Config::benchmark);
        let mut b = small_model(Ccm2Config::benchmark);
        let ta = a.step(1);
        let tb = b.step(8);
        // Same total flops (work is partitioned, not changed)...
        let fa = ta.timing.work.flops as f64;
        let fb = tb.timing.work.flops as f64;
        assert!((fa - fb).abs() < 0.01 * fa, "{fa} vs {fb}");
        // ...but 8 processors finish the wall-clock step faster.
        assert!(tb.seconds < ta.seconds, "{} vs {}", tb.seconds, ta.seconds);
    }

    #[test]
    fn more_processors_never_slower_up_to_node_size() {
        let mut prev = f64::INFINITY;
        for procs in [1usize, 2, 4, 8] {
            let mut m = small_model(Ccm2Config::benchmark);
            m.step(procs); // spin-up (forward step)
            let t = m.step(procs);
            assert!(t.seconds < prev * 1.02, "{procs} procs took {} vs previous {prev}", t.seconds);
            prev = t.seconds;
        }
    }

    #[test]
    fn history_volume_near_15gb_per_year_at_t63() {
        let m = Ccm2Proxy::new(Ccm2Config::benchmark(Resolution::T63), presets::sx4_benchmarked());
        let per_year = m.history_bytes_per_day() * 365;
        let gb = per_year as f64 / 1e9;
        assert!((8.0..25.0).contains(&gb), "T63 yearly history {gb} GB vs paper's ~15 GB");
    }
}

#[cfg(test)]
mod program_tests {
    use super::*;
    use sxsim::presets;

    fn mk() -> Ccm2Proxy {
        Ccm2Proxy::new(Ccm2Config::benchmark(Resolution::T42), presets::sx4_benchmarked())
    }

    #[test]
    fn recording_does_not_perturb_the_step() {
        let mut a = mk();
        let mut b = mk();
        a.step(4);
        b.step(4);
        let ta = a.step(4);
        let (tb, _) = b.record_step_program(4);
        assert_eq!(ta.timing.wall_cycles.to_bits(), tb.timing.wall_cycles.to_bits());
        assert_eq!(ta.seconds.to_bits(), tb.seconds.to_bits());
        assert_eq!(ta.timing.work, tb.timing.work);
        assert_eq!(a.mean_phi(0), b.mean_phi(0));
    }

    #[test]
    fn replay_is_bit_identical_to_the_recorded_step() {
        let mut m = mk();
        m.step(4); // forward spin-up step
        let (recorded, program) = m.record_step_program(4);
        assert!(program.total_charges() > program.instructions(), "coalescing bought nothing");
        let replayed = m.replay_step(&program);
        assert_eq!(recorded.timing.wall_cycles.to_bits(), replayed.timing.wall_cycles.to_bits());
        assert_eq!(recorded.seconds.to_bits(), replayed.seconds.to_bits());
        assert_eq!(recorded.timing.work, replayed.timing.work);
        assert_eq!(
            recorded.bytes_per_cycle_per_proc.to_bits(),
            replayed.bytes_per_cycle_per_proc.to_bits()
        );
    }

    #[test]
    fn replay_matches_a_later_real_step_of_the_same_parity() {
        // Every leapfrog step after the forward first one charges the same
        // program, so a replay also reproduces *future* steps bit-exactly.
        let mut a = mk();
        a.step(4);
        let (_, program) = a.record_step_program(4);
        let replayed = a.replay_step(&program);
        let mut b = mk();
        b.step(4);
        b.step(4);
        let t3 = b.step(4);
        assert_eq!(t3.timing.wall_cycles.to_bits(), replayed.timing.wall_cycles.to_bits());
        assert_eq!(t3.seconds.to_bits(), replayed.seconds.to_bits());
    }

    #[test]
    fn replay_accumulates_op_stats_without_advancing_state() {
        let mut m = mk();
        m.step(4);
        let (_, program) = m.record_step_program(4);
        let steps_before = m.steps;
        let phi_before = m.mean_phi(0);
        let s0 = m.op_stats();
        let s_step = {
            // The per-step op-stat delta of the recorded step, for
            // comparison against the replay's delta.
            let mut before = mk();
            before.step(4);
            let a = before.op_stats();
            before.step(4);
            let mut d = before.op_stats();
            d.vector_ops -= a.vector_ops;
            d.vector_elements -= a.vector_elements;
            d.intrinsic_calls -= a.intrinsic_calls;
            d.scalar_iters -= a.scalar_iters;
            d
        };
        m.replay_step(&program);
        assert_eq!(m.steps, steps_before, "replay must not advance the model");
        assert_eq!(m.mean_phi(0), phi_before);
        let s1 = m.op_stats();
        assert_eq!(s1.vector_ops - s0.vector_ops, s_step.vector_ops);
        assert_eq!(s1.vector_elements - s0.vector_elements, s_step.vector_elements);
        assert_eq!(s1.intrinsic_calls - s0.intrinsic_calls, s_step.intrinsic_calls);
        assert_eq!(s1.scalar_iters - s0.scalar_iters, s_step.scalar_iters);
        assert!(s1.program_replays > s0.program_replays);
    }
}

#[cfg(test)]
mod multinode_tests {
    use super::*;
    use sxsim::presets;

    #[test]
    fn two_nodes_beat_one_on_a_big_problem() {
        // T85 has enough latitudes (128) to feed 64 processors; comparing
        // first (forward) steps keeps the test cheap and is apples-to-apples.
        let mk =
            || Ccm2Proxy::new(Ccm2Config::benchmark(Resolution::T85), presets::sx4_benchmarked());
        let t1 = mk().step(32);
        let t2 = mk().step_multinode(2, 32);
        assert!(t2.seconds < t1.seconds, "2 nodes {} vs 1 node {}", t2.seconds, t1.seconds);
        // ...but below perfect scaling: the IXS exchange and shorter
        // per-processor vectors cost something.
        assert!(
            t2.seconds > 0.5 * t1.seconds,
            "suspiciously superlinear: {} vs {}",
            t2.seconds,
            t1.seconds
        );
    }

    #[test]
    fn big_problems_profit_more_from_a_second_node() {
        // The multi-node analogue of Figure 8: the T85 problem gains more
        // from doubling the nodes than the thin-sliced T42 does.
        let speedup = |res: Resolution| {
            let mk = || Ccm2Proxy::new(Ccm2Config::benchmark(res), presets::sx4_benchmarked());
            let t1 = mk().step(32);
            let t2 = mk().step_multinode(2, 32);
            t1.seconds / t2.seconds
        };
        let s42 = speedup(Resolution::T42);
        let s85 = speedup(Resolution::T85);
        assert!(s85 > s42, "T85 two-node speedup {s85} should beat T42's {s42}");
        assert!(s42 < 2.0 && s85 < 2.0, "nothing scales superlinearly: {s42}, {s85}");
    }

    #[test]
    fn multinode_state_matches_single_node() {
        // The decomposition must not change the answer.
        let mk =
            || Ccm2Proxy::new(Ccm2Config::benchmark(Resolution::T42), presets::sx4_benchmarked());
        let mut a = mk();
        let mut b = mk();
        for _ in 0..3 {
            a.step(8);
            b.step_multinode(2, 16);
        }
        // Partial sums accumulate in a different order across the two
        // decompositions, so agreement is to rounding, not bit-exact.
        assert!(
            (a.mean_phi(0) - b.mean_phi(0)).abs() < 1e-12 * a.mean_phi(0).abs().max(1.0),
            "{} vs {}",
            a.mean_phi(0),
            b.mean_phi(0)
        );
        assert!((a.energy(0) - b.energy(0)).abs() < 1e-9 * a.energy(0).abs().max(1.0));
    }

    #[test]
    #[should_panic(expected = "16")]
    fn too_many_nodes_rejected() {
        let mut m =
            Ccm2Proxy::new(Ccm2Config::benchmark(Resolution::T42), presets::sx4_benchmarked());
        m.step_multinode(17, 4);
    }
}

#[cfg(test)]
mod ftrace_tests {
    use super::*;
    use sxsim::presets;

    #[test]
    fn traced_step_breaks_down_the_phases() {
        let mut m =
            Ccm2Proxy::new(Ccm2Config::benchmark(Resolution::T42), presets::sx4_benchmarked());
        let (_t, ft) = m.step_traced(4);
        let regions = ft.regions();
        for name in [
            "synthesis",
            "grid tendencies",
            "physics",
            "SLT transport",
            "analysis",
            "semi-implicit solve",
        ] {
            assert!(regions.contains_key(name), "missing region {name}");
            assert!(regions[name].cost.cycles > 0.0, "{name} empty");
        }
        // The transforms dominate a spectral model's step.
        let transforms = regions["synthesis"].cost.cycles + regions["analysis"].cost.cycles;
        let total: f64 = regions.values().map(|r| r.cost.cycles).sum();
        assert!(transforms > 0.3 * total, "transforms {transforms} of {total}");
        // Synthesis ran once per level.
        assert_eq!(regions["synthesis"].calls, 18);
        // The rendered table exists and mentions the phases.
        let table = ft.render(9.2);
        assert!(table.contains("synthesis") && table.contains("MFLOPS"));
    }

    #[test]
    fn traced_and_untraced_steps_agree() {
        let mk =
            || Ccm2Proxy::new(Ccm2Config::benchmark(Resolution::T42), presets::sx4_benchmarked());
        let mut a = mk();
        let mut b = mk();
        let ta = a.step(4);
        let (tb, _) = b.step_traced(4);
        assert_eq!(ta.timing.wall_cycles, tb.timing.wall_cycles);
        assert_eq!(a.mean_phi(0), b.mean_phi(0));
    }
}

#[cfg(test)]
mod anchor_calibration {
    use super::*;
    use sxsim::presets;

    /// Not a test: prints the Figure 8 / Table 5 anchors. Run with
    /// `cargo test -p ccm-proxy --release -- --ignored --nocapture anchors`.
    #[test]
    #[ignore = "calibration printout, not an assertion"]
    fn print_fig8_anchors() {
        let clock = presets::sx4_benchmarked().clock_ns;
        for (res, procs) in
            [(Resolution::T42, 32usize), (Resolution::T106, 32), (Resolution::T170, 32)]
        {
            let mut m = Ccm2Proxy::new(Ccm2Config::benchmark(res), presets::sx4_benchmarked());
            m.step(procs);
            let t = m.step(procs);
            let year = t.seconds * (365 * res.steps_per_day()) as f64;
            println!(
                "{} on {procs} procs: {:.2} Cray-GF, {:.4} s/step, year ~ {:.0} s",
                res.name(),
                t.timing.cray_gflops(clock),
                t.seconds,
                year
            );
        }
    }
}
