//! Spectral energy diagnostics: the power distribution over total
//! wavenumber n that spectral modelers watch (energy cascades, the
//! hyperdiffusion tail, truncation health). Parseval ties the spectrum to
//! grid-space variance, which makes the diagnostics independently
//! testable.

use crate::spectral::SphericalTransform;
use ncar_kernels::fft::C64;

/// Power per total wavenumber: `spectrum[n] = sum_m w_m |a_mn|^2`, with
/// conjugate-pair weighting (m = 0 counts once, m > 0 twice).
pub fn power_by_n(t: &SphericalTransform, spec: &[C64]) -> Vec<f64> {
    assert_eq!(spec.len(), t.nspec());
    let mut power = vec![0.0f64; t.trunc + 1];
    for m in 0..=t.trunc {
        let w = if m == 0 { 1.0 } else { 2.0 };
        for n in m..=t.trunc {
            power[n] += w * spec[t.index(m, n)].norm_sqr();
        }
    }
    power
}

/// Total spectral power (the Parseval counterpart of the grid variance).
pub fn total_power(t: &SphericalTransform, spec: &[C64]) -> f64 {
    power_by_n(t, spec).iter().sum()
}

/// Area-weighted mean of `grid^2` over the Gaussian grid — equals
/// [`total_power`] for a band-limited field (Parseval for orthonormal
/// spherical harmonics with the 1/2 measure weight folded in).
pub fn grid_variance(t: &SphericalTransform, grid: &[f64]) -> f64 {
    assert_eq!(grid.len(), t.nlat * t.nlon);
    let mut total = 0.0;
    for l in 0..t.nlat {
        let w = t.weights[l];
        let row = &grid[l * t.nlon..(l + 1) * t.nlon];
        total += w * row.iter().map(|v| v * v).sum::<f64>() / t.nlon as f64;
    }
    total
}

/// Fraction of the power in the top (smallest-scale) third of the
/// spectrum — the quantity hyperdiffusion is supposed to keep small.
pub fn tail_fraction(t: &SphericalTransform, spec: &[C64]) -> f64 {
    let p = power_by_n(t, spec);
    let total: f64 = p.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    let cutoff = 2 * (t.trunc + 1) / 3;
    p[cutoff..].iter().sum::<f64>() / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Ccm2Config, Ccm2Proxy};
    use crate::resolution::Resolution;
    use sxsim::{presets, Vm};

    fn transform() -> SphericalTransform {
        SphericalTransform::new(10, 16, 32)
    }

    #[test]
    fn single_mode_spectrum_is_a_spike() {
        let t = transform();
        let mut spec = vec![C64::ZERO; t.nspec()];
        spec[t.index(2, 5)] = C64::new(3.0, -4.0); // |a|^2 = 25
        let p = power_by_n(&t, &spec);
        assert_eq!(p[5], 2.0 * 25.0); // m > 0: conjugate pair
        assert!(p.iter().enumerate().all(|(n, &v)| n == 5 || v == 0.0));
    }

    #[test]
    fn parseval_ties_spectrum_to_grid_variance() {
        let t = transform();
        let mut vm = Vm::new(presets::sx4_benchmarked());
        let mut spec = vec![C64::ZERO; t.nspec()];
        for m in 0..=t.trunc {
            for n in m..=t.trunc {
                let i = t.index(m, n);
                let re = ((m * 3 + n) % 7) as f64 / 7.0 - 0.4;
                let im = if m == 0 { 0.0 } else { ((m + n * 2) % 5) as f64 / 5.0 - 0.3 };
                spec[i] = C64::new(re, im);
            }
        }
        let grid = t.synthesize(&mut vm, &spec);
        let var = grid_variance(&t, &grid);
        let pow = total_power(&t, &spec);
        // Our conventions: grid integral weight sums to 2, P̄ orthonormal
        // with ∫ P̄² dmu = 1, Fourier e^{imλ} pairs doubled — variance and
        // power agree up to that fixed measure.
        assert!(
            (var - pow).abs() < 1e-9 * pow.max(1.0),
            "Parseval violated: variance {var} vs power {pow}"
        );
    }

    #[test]
    fn hyperdiffusion_suppresses_the_tail() {
        // Run the benchmark model a day; the smallest scales must hold a
        // tiny fraction of the geopotential power.
        let mut m =
            Ccm2Proxy::new(Ccm2Config::benchmark(Resolution::T42), presets::sx4_benchmarked());
        for _ in 0..24 {
            m.step(8);
        }
        let t = m.transform.clone();
        let frac = tail_fraction(&t, &m.phi_level(0));
        assert!(frac < 0.2, "spectral tail holds {frac} of the power");
    }

    #[test]
    fn zero_field_zero_power() {
        let t = transform();
        let spec = vec![C64::ZERO; t.nspec()];
        assert_eq!(total_power(&t, &spec), 0.0);
        assert_eq!(tail_fraction(&t, &spec), 0.0);
    }
}
