//! CCM2 model resolutions (the paper's Table 4).
//!
//! Spectral models are named by triangular truncation wavenumber and
//! vertical level count: T42L18 uses a 64 x 128 Gaussian grid, 18 levels,
//! and a 20-minute timestep.

/// The five resolutions of Table 4, all with 18 levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resolution {
    T42,
    T63,
    T85,
    T106,
    T170,
}

impl Resolution {
    /// All resolutions in Table 4 order.
    pub const ALL: [Resolution; 5] =
        [Resolution::T42, Resolution::T63, Resolution::T85, Resolution::T106, Resolution::T170];

    /// Triangular truncation wavenumber.
    pub fn truncation(self) -> usize {
        match self {
            Resolution::T42 => 42,
            Resolution::T63 => 63,
            Resolution::T85 => 85,
            Resolution::T106 => 106,
            Resolution::T170 => 170,
        }
    }

    /// Gaussian latitudes (Table 4's first grid dimension).
    pub fn nlat(self) -> usize {
        match self {
            Resolution::T42 => 64,
            Resolution::T63 => 96,
            Resolution::T85 => 128,
            Resolution::T106 => 160,
            Resolution::T170 => 256,
        }
    }

    /// Longitudes (Table 4's second grid dimension; always 2 x nlat).
    pub fn nlon(self) -> usize {
        2 * self.nlat()
    }

    /// Vertical levels ("L18").
    pub fn nlev(self) -> usize {
        18
    }

    /// Model timestep in minutes (Table 4).
    pub fn timestep_minutes(self) -> f64 {
        match self {
            Resolution::T42 => 20.0,
            Resolution::T63 => 12.0,
            Resolution::T85 => 10.0,
            Resolution::T106 => 7.5,
            Resolution::T170 => 5.0,
        }
    }

    /// Nominal grid spacing in degrees (Table 4).
    pub fn spacing_degrees(self) -> f64 {
        match self {
            Resolution::T42 => 2.8,
            Resolution::T63 => 2.1,
            Resolution::T85 => 1.4,
            Resolution::T106 => 1.1,
            Resolution::T170 => 0.7,
        }
    }

    /// Display name, e.g. "T42L18".
    pub fn name(self) -> String {
        format!("T{}L{}", self.truncation(), self.nlev())
    }

    /// Steps per simulated day.
    pub fn steps_per_day(self) -> usize {
        (24.0 * 60.0 / self.timestep_minutes()).round() as usize
    }

    /// Number of (m, n) spectral coefficients under triangular truncation:
    /// 0 <= m <= n <= T.
    pub fn nspec(self) -> usize {
        let t = self.truncation() + 1;
        t * (t + 1) / 2
    }

    /// Total grid columns.
    pub fn ncols(self) -> usize {
        self.nlat() * self.nlon()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_grid_sizes() {
        assert_eq!((Resolution::T42.nlat(), Resolution::T42.nlon()), (64, 128));
        assert_eq!((Resolution::T63.nlat(), Resolution::T63.nlon()), (96, 192));
        assert_eq!((Resolution::T85.nlat(), Resolution::T85.nlon()), (128, 256));
        assert_eq!((Resolution::T106.nlat(), Resolution::T106.nlon()), (160, 320));
        assert_eq!((Resolution::T170.nlat(), Resolution::T170.nlon()), (256, 512));
    }

    #[test]
    fn table4_time_steps() {
        assert_eq!(Resolution::T42.timestep_minutes(), 20.0);
        assert_eq!(Resolution::T106.timestep_minutes(), 7.5);
        assert_eq!(Resolution::T170.timestep_minutes(), 5.0);
        assert_eq!(Resolution::T42.steps_per_day(), 72);
        assert_eq!(Resolution::T170.steps_per_day(), 288);
    }

    #[test]
    fn names_and_levels() {
        assert_eq!(Resolution::T42.name(), "T42L18");
        for r in Resolution::ALL {
            assert_eq!(r.nlev(), 18);
        }
    }

    #[test]
    fn grid_supports_unaliased_truncation() {
        // The transform grid must satisfy nlat >= (3T+1)/2 to avoid
        // quadratic aliasing (the canonical spectral-model constraint).
        for r in Resolution::ALL {
            assert!(2 * r.nlat() > 3 * r.truncation(), "{}", r.name());
        }
    }

    #[test]
    fn spectral_sizes() {
        assert_eq!(Resolution::T42.nspec(), 43 * 44 / 2);
        assert_eq!(Resolution::T170.nspec(), 171 * 172 / 2);
    }
}
