//! The spherical-harmonic (spectral) transform: "the spectral transform
//! method is employed to compute the dry dynamics of CCM2 ... a series of
//! highly non-local operations" (paper §4.7.1).
//!
//! Analysis (grid → spectral) runs a real FFT along each latitude circle
//! followed by Gauss-Legendre quadrature in latitude against the
//! P̄ₙᵐ basis; synthesis is the reverse. Both legs support
//! latitude-range restriction so the multiprocessor model can price the
//! per-processor partial transforms exactly the way CCM2's latitude
//! decomposition does (partial quadrature sums + a reduction).

use crate::gauss::gauss_legendre;
use crate::legendre::{pack_index, pack_len, plm_at};
use ncar_kernels::fft::{charge_transform_fused, rfft_spectrum, C64};
use std::ops::Range;
use sxsim::{Access, VecOp, Vm, VopClass};

/// A transform fixed to one (truncation, grid) geometry.
#[derive(Debug, Clone)]
pub struct SphericalTransform {
    pub trunc: usize,
    pub nlat: usize,
    pub nlon: usize,
    /// Gaussian latitudes mu = sin(lat), ascending.
    pub mu: Vec<f64>,
    /// Gaussian weights.
    pub weights: Vec<f64>,
    /// How many independent transforms (levels x fields) the caller fuses
    /// into each vector operation — multilevel models set this to their
    /// level count, lengthening the charged vectors without changing the
    /// arithmetic (the CCM2 "vertical slab" vectorization). Default 1.
    pub fused_transforms: usize,
    /// plm[lat * nspec + pack_index(m, n)]
    plm: Vec<f64>,
    /// phase[lon * (trunc + 1) + m] = e^{i m lambda_lon}: the Fourier
    /// phase factors of the synthesis leg, fixed by the geometry.
    phase: Vec<C64>,
}

impl SphericalTransform {
    /// Build the transform for a triangular truncation on an
    /// nlat x nlon Gaussian grid. Requires an alias-free grid
    /// (2*nlat >= 3*trunc + 1 and nlon >= 3*trunc + 1).
    pub fn new(trunc: usize, nlat: usize, nlon: usize) -> SphericalTransform {
        assert!(2 * nlat > 3 * trunc, "latitude grid aliases T{trunc}");
        assert!(nlon > 2 * trunc, "longitude grid cannot hold T{trunc}");
        assert!(nlon.is_multiple_of(2), "even longitude count required by the real FFT");
        let (mu, weights) = gauss_legendre(nlat);
        let nspec = pack_len(trunc);
        let mut plm = vec![0.0f64; nlat * nspec];
        for (l, &m) in mu.iter().enumerate() {
            plm[l * nspec..(l + 1) * nspec].copy_from_slice(&plm_at(trunc, m));
        }
        let mut phase = vec![C64::ZERO; nlon * (trunc + 1)];
        for (j, prow) in phase.chunks_exact_mut(trunc + 1).enumerate() {
            let lambda = 2.0 * std::f64::consts::PI * j as f64 / nlon as f64;
            for (m, p) in prow.iter_mut().enumerate() {
                *p = C64::cis(m as f64 * lambda);
            }
        }
        SphericalTransform { trunc, nlat, nlon, mu, weights, fused_transforms: 1, plm, phase }
    }

    /// Packed spectral length.
    pub fn nspec(&self) -> usize {
        pack_len(self.trunc)
    }

    /// Packed index of (m, n).
    pub fn index(&self, m: usize, n: usize) -> usize {
        pack_index(self.trunc, m, n)
    }

    /// P̄ₙᵐ at latitude index `lat`.
    pub fn plm(&self, lat: usize, m: usize, n: usize) -> f64 {
        self.plm[lat * self.nspec() + self.index(m, n)]
    }

    /// Fourier-analyze the latitude rows in `lats`: returns, per local row,
    /// the complex coefficients c_m for m = 0..=trunc with the 1/nlon
    /// normalization. Charges the vectorized multi-row FFT.
    fn fourier_rows(&self, vm: &mut Vm, grid: &[f64], lats: &Range<usize>) -> Vec<Vec<C64>> {
        let rows: Vec<Vec<C64>> = lats
            .clone()
            .map(|l| {
                let row = &grid[l * self.nlon..(l + 1) * self.nlon];
                let mut spec = rfft_spectrum(row);
                spec.truncate(self.trunc + 1);
                for c in &mut spec {
                    *c = *c * (1.0 / self.nlon as f64);
                }
                spec
            })
            .collect();
        // One batched multi-transform, vectorized across the local rows and
        // the caller's fused level/field slab.
        charge_transform_fused(vm, self.nlon, lats.len().max(1), self.fused_transforms);
        rows
    }

    /// Partial analysis over a latitude range: quadrature contributions of
    /// those rows only. Summing the partials of a full partition equals
    /// [`SphericalTransform::analyze`] over 0..nlat.
    pub fn analyze_partial(&self, vm: &mut Vm, grid: &[f64], lats: Range<usize>) -> Vec<C64> {
        assert_eq!(grid.len(), self.nlat * self.nlon);
        let nspec = self.nspec();
        let four = self.fourier_rows(vm, grid, &lats);
        let mut spec = vec![C64::ZERO; nspec];
        for (li, l) in lats.clone().enumerate() {
            let w = self.weights[l];
            let prow = &self.plm[l * nspec..(l + 1) * nspec];
            for m in 0..=self.trunc {
                let c = four[li][m] * w;
                for n in m..=self.trunc {
                    let i = self.index(m, n);
                    spec[i] = spec[i] + c * prow[i];
                }
            }
        }
        // Charge: per local latitude, per m, one chained multiply-add sweep
        // over the (trunc - m + 1) target coefficients, real and imaginary.
        // The accumulator lives in a vector register; only P̄ and the
        // Fourier coefficient stream from memory.
        self.charge_legendre_leg(vm, lats.len());
        spec
    }

    /// Charge one Legendre leg over `local_lats` rows: per latitude, per
    /// m, a fused multiply-add sweep over the (trunc - m + 1) coefficients,
    /// real and imaginary, with `fused_transforms` slabs interleaved to
    /// lengthen the vectors (the arithmetic total is unchanged — op count
    /// shrinks by the same factor the length grows).
    fn charge_legendre_leg(&self, vm: &mut Vm, local_lats: usize) {
        let fused = self.fused_transforms.max(1);
        // Per latitude: real+imaginary sweeps over (trunc - m + 1)
        // coefficients for every m — 2 * pack_len(trunc) elements in all.
        let total_elems = (self.trunc + 1) * (self.trunc + 2);
        let sweeps = 2 * (self.trunc + 1);
        let len_avg = (total_elems / sweeps).max(1); // ~ (trunc + 2) / 2
        let vec_len = len_avg * fused;
        let ops = total_elems.div_ceil(vec_len).max(1);
        let op = VecOp::new(vec_len, VopClass::Fma, &[Access::Stride(1), Access::Stride(1)], &[]);
        vm.charge_vector_op_repeated(&op, local_lats * ops);
    }

    /// Full analysis: grid → packed spectral coefficients.
    pub fn analyze(&self, vm: &mut Vm, grid: &[f64]) -> Vec<C64> {
        self.analyze_partial(vm, grid, 0..self.nlat)
    }

    /// Synthesize the latitude rows in `lats` from spectral coefficients
    /// into `grid` (only those rows are written).
    pub fn synthesize_partial(
        &self,
        vm: &mut Vm,
        spec: &[C64],
        grid: &mut [f64],
        lats: Range<usize>,
    ) {
        assert_eq!(spec.len(), self.nspec());
        assert_eq!(grid.len(), self.nlat * self.nlon);
        let nspec = self.nspec();
        for l in lats.clone() {
            let prow = &self.plm[l * nspec..(l + 1) * nspec];
            // c_m(mu_l) = sum_n a_{mn} P̄_n^m(mu_l)
            let mut cm = vec![C64::ZERO; self.trunc + 1];
            for m in 0..=self.trunc {
                let mut acc = C64::ZERO;
                for n in m..=self.trunc {
                    let i = self.index(m, n);
                    acc = acc + spec[i] * prow[i];
                }
                cm[m] = acc;
            }
            // f(lambda_j) = c_0 + 2 Re sum_{m>=1} c_m e^{i m lambda_j},
            // with the phase factors looked up from the precomputed table.
            let row = &mut grid[l * self.nlon..(l + 1) * self.nlon];
            for (j, g) in row.iter_mut().enumerate() {
                let phases = &self.phase[j * (self.trunc + 1)..(j + 1) * (self.trunc + 1)];
                let mut v = cm[0].re;
                for (m, c) in cm.iter().enumerate().skip(1) {
                    let ph = phases[m];
                    v += 2.0 * (c.re * ph.re - c.im * ph.im);
                }
                *g = v;
            }
        }
        // Charge the Legendre leg (per latitude, per m: one fused sweep over
        // n, real and imaginary)...
        self.charge_legendre_leg(vm, lats.len());
        // ...and the inverse multi-row FFT.
        charge_transform_fused(vm, self.nlon, lats.len().max(1), self.fused_transforms);
    }

    /// Full synthesis into a fresh grid.
    pub fn synthesize(&self, vm: &mut Vm, spec: &[C64]) -> Vec<f64> {
        let mut grid = vec![0.0f64; self.nlat * self.nlon];
        self.synthesize_partial(vm, spec, &mut grid, 0..self.nlat);
        grid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxsim::presets;

    fn vm() -> Vm {
        Vm::new(presets::sx4_benchmarked())
    }

    /// Small alias-free geometry for tests: T10 on 16 x 32.
    fn small() -> SphericalTransform {
        SphericalTransform::new(10, 16, 32)
    }

    #[test]
    fn roundtrip_from_random_spectrum() {
        let t = small();
        let mut vm = vm();
        // Build a band-limited field from a deterministic spectrum.
        let mut spec = vec![C64::ZERO; t.nspec()];
        for m in 0..=t.trunc {
            for n in m..=t.trunc {
                let i = t.index(m, n);
                let re = ((m * 7 + n * 3) % 11) as f64 / 11.0 - 0.5;
                let im = if m == 0 { 0.0 } else { ((m * 5 + n) % 13) as f64 / 13.0 - 0.5 };
                spec[i] = C64::new(re, im);
            }
        }
        let grid = t.synthesize(&mut vm, &spec);
        let back = t.analyze(&mut vm, &grid);
        for m in 0..=t.trunc {
            for n in m..=t.trunc {
                let i = t.index(m, n);
                let d = (back[i] - spec[i]).abs();
                assert!(d < 1e-10, "({m},{n}): {:?} vs {:?}", back[i], spec[i]);
            }
        }
    }

    #[test]
    fn constant_field_is_pure_00_mode() {
        let t = small();
        let mut vm = vm();
        let grid = vec![3.25f64; t.nlat * t.nlon];
        let spec = t.analyze(&mut vm, &grid);
        // a_00 * P̄_0^0 = mean => a_00 = 3.25 / sqrt(1/2) ... with our
        // conventions a_00 = mean / P̄00-projection: check via synthesis.
        for m in 0..=t.trunc {
            for n in m..=t.trunc {
                if (m, n) != (0, 0) {
                    assert!(spec[t.index(m, n)].abs() < 1e-10, "({m},{n}) leaked");
                }
            }
        }
        let back = t.synthesize(&mut vm, &spec);
        assert!(back.iter().all(|&v| (v - 3.25).abs() < 1e-10));
    }

    #[test]
    fn zonal_wavenumber_isolated() {
        // f = cos(2*lambda) should land entirely in m = 2.
        let t = small();
        let mut vm = vm();
        let mut grid = vec![0.0f64; t.nlat * t.nlon];
        for l in 0..t.nlat {
            for j in 0..t.nlon {
                let lambda = 2.0 * std::f64::consts::PI * j as f64 / t.nlon as f64;
                grid[l * t.nlon + j] = (2.0 * lambda).cos();
            }
        }
        let spec = t.analyze(&mut vm, &grid);
        for m in 0..=t.trunc {
            for n in m..=t.trunc {
                let a = spec[t.index(m, n)].abs();
                if m == 2 {
                    continue;
                }
                assert!(a < 1e-10, "({m},{n}) = {a}");
            }
        }
        let total: f64 = (2..=t.trunc).map(|n| spec[t.index(2, n)].norm_sqr()).sum();
        assert!(total > 1e-3, "m=2 energy missing");
    }

    #[test]
    fn partial_analysis_sums_to_full() {
        let t = small();
        let mut vm = vm();
        let grid: Vec<f64> =
            (0..t.nlat * t.nlon).map(|i| ((i * 37) % 101) as f64 / 101.0).collect();
        let full = t.analyze(&mut vm, &grid);
        let a = t.analyze_partial(&mut vm, &grid, 0..7);
        let b = t.analyze_partial(&mut vm, &grid, 7..16);
        for i in 0..t.nspec() {
            let s = a[i] + b[i];
            assert!((s - full[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn partial_synthesis_writes_only_its_rows() {
        let t = small();
        let mut vm = vm();
        let mut spec = vec![C64::ZERO; t.nspec()];
        spec[t.index(0, 0)] = C64::new(1.0, 0.0);
        let mut grid = vec![f64::NAN; t.nlat * t.nlon];
        t.synthesize_partial(&mut vm, &spec, &mut grid, 4..8);
        for l in 0..t.nlat {
            let row_ok = grid[l * t.nlon..(l + 1) * t.nlon].iter().all(|v| v.is_finite());
            assert_eq!(row_ok, (4..8).contains(&l), "row {l}");
        }
    }

    #[test]
    fn transform_charges_cycles() {
        let t = small();
        let mut vm = vm();
        let grid = vec![1.0f64; t.nlat * t.nlon];
        let _ = t.analyze(&mut vm, &grid);
        assert!(vm.cost().cycles > 0.0);
        assert!(vm.cost().flops > 0);
    }

    #[test]
    #[should_panic(expected = "aliases")]
    fn aliasing_grid_rejected() {
        SphericalTransform::new(42, 32, 128);
    }
}

#[cfg(test)]
mod derivative_tests {
    use super::*;
    use ncar_kernels::fft::C64;
    use sxsim::{presets, Vm};

    /// The zonal-derivative operator the model uses (multiply by i*m in
    /// spectral space) must agree with a centred finite difference of the
    /// synthesized field.
    #[test]
    fn spectral_ddlambda_matches_finite_difference() {
        let t = SphericalTransform::new(10, 16, 32);
        let mut vm = Vm::new(presets::sx4_benchmarked());
        // A smooth band-limited field.
        let mut spec = vec![C64::ZERO; t.nspec()];
        spec[t.index(1, 2)] = C64::new(0.7, -0.3);
        spec[t.index(3, 5)] = C64::new(-0.2, 0.5);
        spec[t.index(0, 4)] = C64::new(1.1, 0.0);
        let grid = t.synthesize(&mut vm, &spec);

        // d/dlambda in spectral space: a_{mn} -> i m a_{mn}.
        let mut dspec = vec![C64::ZERO; t.nspec()];
        for m in 0..=t.trunc {
            for n in m..=t.trunc {
                let i = t.index(m, n);
                let a = spec[i];
                dspec[i] = C64::new(-(m as f64) * a.im, m as f64 * a.re);
            }
        }
        let dgrid = t.synthesize(&mut vm, &dspec);

        // High-order centred difference on the periodic rows.
        let nlon = t.nlon;
        let dl = 2.0 * std::f64::consts::PI / nlon as f64;
        for l in 0..t.nlat {
            for j in 0..nlon {
                let g = |k: i64| grid[l * nlon + ((j as i64 + k).rem_euclid(nlon as i64)) as usize];
                let fd = (8.0 * (g(1) - g(-1)) - (g(2) - g(-2))) / (12.0 * dl);
                let an = dgrid[l * nlon + j];
                assert!(
                    (fd - an).abs() < 2e-2 * (1.0 + an.abs()),
                    "lat {l} lon {j}: fd {fd} vs spectral {an}"
                );
            }
        }
    }
}
