//! Fully-normalized associated Legendre functions P̄ₙᵐ(μ), the latitude
//! basis of the spherical-harmonic (spectral) transform.
//!
//! Normalization: ∫₋₁¹ P̄ₙᵐ(μ) P̄ₙ'ᵐ(μ) dμ = δₙₙ' (orthonormal on [-1, 1],
//! Condon–Shortley phase omitted, as spectral models do).

/// Compute P̄ₙᵐ(μ) for all 0 ≤ m ≤ n ≤ `trunc` at one point, packed by
/// [`pack_index`]. Uses the stable m-diagonal + three-term-n recurrences.
pub fn plm_at(trunc: usize, mu: f64) -> Vec<f64> {
    let nspec = (trunc + 1) * (trunc + 2) / 2;
    let mut p = vec![0.0f64; nspec];
    let sin_theta = (1.0 - mu * mu).max(0.0).sqrt();

    // Diagonal: P̄_m^m.
    let mut pmm = (0.5f64).sqrt(); // P̄_0^0
    for m in 0..=trunc {
        if m > 0 {
            let mf = m as f64;
            pmm *= sin_theta * ((2.0 * mf + 1.0) / (2.0 * mf)).sqrt();
        }
        p[pack_index(trunc, m, m)] = pmm;
        if m < trunc {
            // First off-diagonal: P̄_{m+1}^m = mu * sqrt(2m+3) * P̄_m^m.
            let pm1 = mu * ((2.0 * m as f64 + 3.0).sqrt()) * pmm;
            p[pack_index(trunc, m, m + 1)] = pm1;
            // Upward three-term recurrence in n.
            let mut pn_2 = pmm;
            let mut pn_1 = pm1;
            for n in (m + 2)..=trunc {
                let nf = n as f64;
                let mf = m as f64;
                let a = ((4.0 * nf * nf - 1.0) / (nf * nf - mf * mf)).sqrt();
                let b = (((2.0 * nf + 1.0) * (nf - 1.0 - mf) * (nf - 1.0 + mf))
                    / ((2.0 * nf - 3.0) * (nf * nf - mf * mf)))
                    .sqrt();
                let pn = a * mu * pn_1 - b * pn_2;
                p[pack_index(trunc, m, n)] = pn;
                pn_2 = pn_1;
                pn_1 = pn;
            }
        }
    }
    p
}

/// Packed index of coefficient (m, n) under triangular truncation `trunc`:
/// coefficients are stored m-major, n ascending within each m.
pub fn pack_index(trunc: usize, m: usize, n: usize) -> usize {
    debug_assert!(m <= n && n <= trunc);
    // offset(m) = sum_{k<m} (trunc + 1 - k) = m(trunc+1) - m(m-1)/2
    m * (2 * (trunc + 1) - m + 1) / 2 + (n - m)
}

/// Total packed coefficients for `trunc`.
pub fn pack_len(trunc: usize) -> usize {
    (trunc + 1) * (trunc + 2) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gauss::gauss_legendre;

    #[test]
    fn pack_index_is_a_bijection() {
        for trunc in [0usize, 1, 5, 42] {
            let mut seen = vec![false; pack_len(trunc)];
            for m in 0..=trunc {
                for n in m..=trunc {
                    let i = pack_index(trunc, m, n);
                    assert!(!seen[i], "collision at ({m},{n})");
                    seen[i] = true;
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn p00_is_sqrt_half() {
        let p = plm_at(3, 0.4);
        assert!((p[pack_index(3, 0, 0)] - (0.5f64).sqrt()).abs() < 1e-15);
    }

    #[test]
    fn p10_is_scaled_mu() {
        // P̄_1^0(mu) = sqrt(3/2) * mu.
        for &mu in &[-0.7, 0.0, 0.3, 0.95] {
            let p = plm_at(4, mu);
            assert!((p[pack_index(4, 0, 1)] - (1.5f64).sqrt() * mu).abs() < 1e-14);
        }
    }

    #[test]
    fn orthonormal_under_gauss_quadrature() {
        let trunc = 10;
        let nlat = 16; // >= (trunc*2+1)/2, quadrature exact through degree 31
        let (mu, w) = gauss_legendre(nlat);
        let tables: Vec<Vec<f64>> = mu.iter().map(|&x| plm_at(trunc, x)).collect();
        for m in 0..=trunc {
            for n1 in m..=trunc {
                for n2 in m..=trunc {
                    let dot: f64 = (0..nlat)
                        .map(|l| {
                            w[l] * tables[l][pack_index(trunc, m, n1)]
                                * tables[l][pack_index(trunc, m, n2)]
                        })
                        .sum();
                    let expect = if n1 == n2 { 1.0 } else { 0.0 };
                    assert!((dot - expect).abs() < 1e-10, "m={m} n1={n1} n2={n2}: {dot}");
                }
            }
        }
    }

    #[test]
    fn parity_in_mu() {
        // P̄_n^m(-mu) = (-1)^(n-m) P̄_n^m(mu).
        let trunc = 8;
        let p_pos = plm_at(trunc, 0.37);
        let p_neg = plm_at(trunc, -0.37);
        for m in 0..=trunc {
            for n in m..=trunc {
                let i = pack_index(trunc, m, n);
                let sign = if (n - m) % 2 == 0 { 1.0 } else { -1.0 };
                assert!((p_neg[i] - sign * p_pos[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn values_bounded_at_poles() {
        // At mu = ±1 only m = 0 terms survive.
        let trunc = 6;
        let p = plm_at(trunc, 1.0);
        for m in 1..=trunc {
            for n in m..=trunc {
                assert_eq!(p[pack_index(trunc, m, n)], 0.0);
            }
        }
        assert!(p[pack_index(trunc, 0, 0)] > 0.0);
    }
}
