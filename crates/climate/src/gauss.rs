//! Gauss-Legendre quadrature: the "Gaussian polar grid" of spectral
//! models (paper §4.7.1). The latitude points are the roots of the
//! Legendre polynomial P_nlat(mu), mu = sin(latitude), and the weights make
//! polynomial quadrature of degree 2*nlat - 1 exact — which is what makes
//! the spherical-harmonic analysis integrals exact for band-limited fields.

/// Legendre polynomial P_n(x) and its derivative, by the three-term
/// recurrence.
pub fn legendre_pn(n: usize, x: f64) -> (f64, f64) {
    let mut p0 = 1.0f64;
    if n == 0 {
        return (1.0, 0.0);
    }
    let mut p1 = x;
    for k in 2..=n {
        let kf = k as f64;
        let p2 = ((2.0 * kf - 1.0) * x * p1 - (kf - 1.0) * p0) / kf;
        p0 = p1;
        p1 = p2;
    }
    // P'_n(x) = n (x P_n - P_{n-1}) / (x^2 - 1)
    let dp = n as f64 * (x * p1 - p0) / (x * x - 1.0);
    (p1, dp)
}

/// Gauss-Legendre nodes (ascending) and weights on [-1, 1].
pub fn gauss_legendre(n: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(n >= 1);
    let mut nodes = vec![0.0f64; n];
    let mut weights = vec![0.0f64; n];
    let m = n.div_ceil(2);
    for i in 0..m {
        // Chebyshev-like initial guess for the i-th positive root.
        let mut x = (std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
        // Newton iteration.
        for _ in 0..100 {
            let (p, dp) = legendre_pn(n, x);
            let dx = p / dp;
            x -= dx;
            if dx.abs() < 1e-15 {
                break;
            }
        }
        let (_, dp) = legendre_pn(n, x);
        let w = 2.0 / ((1.0 - x * x) * dp * dp);
        // x is near +1 for i = 0; store ascending.
        nodes[n - 1 - i] = x;
        nodes[i] = -x;
        weights[n - 1 - i] = w;
        weights[i] = w;
    }
    if n % 2 == 1 {
        // The middle node is exactly zero.
        nodes[n / 2] = 0.0;
        let (_, dp) = legendre_pn(n, 0.0);
        weights[n / 2] = 2.0 / (dp * dp);
    }
    (nodes, weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_two() {
        for n in [2usize, 5, 16, 64, 96, 256] {
            let (_, w) = gauss_legendre(n);
            let s: f64 = w.iter().sum();
            assert!((s - 2.0).abs() < 1e-12, "n={n}: sum {s}");
        }
    }

    #[test]
    fn nodes_symmetric_and_sorted() {
        for n in [4usize, 17, 64] {
            let (x, w) = gauss_legendre(n);
            for i in 0..n {
                assert!((x[i] + x[n - 1 - i]).abs() < 1e-13);
                assert!((w[i] - w[n - 1 - i]).abs() < 1e-13);
            }
            assert!(x.windows(2).all(|p| p[0] < p[1]));
            assert!(x.iter().all(|&v| v.abs() < 1.0));
        }
    }

    #[test]
    fn integrates_polynomials_exactly() {
        // n-point rule is exact through degree 2n-1.
        let n = 6;
        let (x, w) = gauss_legendre(n);
        // integral of x^k over [-1,1]: 0 for odd k, 2/(k+1) for even k.
        for k in 0..=(2 * n - 1) {
            let quad: f64 = x.iter().zip(&w).map(|(&xi, &wi)| wi * xi.powi(k as i32)).sum();
            let exact = if k % 2 == 1 { 0.0 } else { 2.0 / (k as f64 + 1.0) };
            assert!((quad - exact).abs() < 1e-12, "k={k}: {quad} vs {exact}");
        }
    }

    #[test]
    fn integrates_smooth_function_well() {
        let n = 20;
        let (x, w) = gauss_legendre(n);
        let quad: f64 = x.iter().zip(&w).map(|(&xi, &wi)| wi * xi.exp()).sum();
        let exact = std::f64::consts::E - 1.0 / std::f64::consts::E;
        assert!((quad - exact).abs() < 1e-13);
    }

    #[test]
    fn two_point_rule_is_analytic() {
        let (x, w) = gauss_legendre(2);
        let r = 1.0 / 3.0f64.sqrt();
        assert!((x[0] + r).abs() < 1e-14 && (x[1] - r).abs() < 1e-14);
        assert!((w[0] - 1.0).abs() < 1e-14 && (w[1] - 1.0).abs() < 1e-14);
    }

    #[test]
    fn legendre_known_values() {
        let (p2, dp2) = legendre_pn(2, 0.5);
        assert!((p2 - (1.5 * 0.25 - 0.5)).abs() < 1e-15); // P2 = (3x^2-1)/2
        assert!((dp2 - 1.5).abs() < 1e-12); // P2' = 3x
    }
}
