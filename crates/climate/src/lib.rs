//! # ccm-proxy — a spectral-transform atmospheric model with CCM2's
//! cost structure
//!
//! The paper's flagship application benchmark is the NCAR Community
//! Climate Model version 2 (CCM2): ~40,000 lines of vector-optimized
//! Fortran 77 built on the spherical-harmonic transform method. This crate
//! rebuilds the pieces that determine CCM2's computational behaviour:
//!
//! - [`resolution`] — the T42..T170, L18 resolutions of Table 4;
//! - [`gauss`] / [`legendre`] / [`spectral`] — the Gaussian grid and the
//!   spherical-harmonic transform (exact round-trips, tested);
//! - [`physics`] — RADABS-centred column physics;
//! - [`slt`] — shape-preserving semi-Lagrangian moisture transport;
//! - [`model`] — the 18-level semi-implicit leapfrog model whose steps are
//!   priced on a simulated SX-4 node, driving Figure 8, Table 5 and
//!   Table 6.

// Index-based loops over grids read as the stencil math they implement.
#![allow(clippy::needless_range_loop)]

pub mod gauss;
pub mod history;
pub mod legendre;
pub mod model;
pub mod physics;
pub mod resolution;
pub mod slt;
pub mod spectra;
pub mod spectral;
pub mod vertical;
pub mod wire;

pub use model::{Ccm2Config, Ccm2Proxy, StepTiming};
pub use resolution::Resolution;
pub use spectral::SphericalTransform;
