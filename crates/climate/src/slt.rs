//! Shape-preserving semi-Lagrangian transport (SLT) of trace constituents
//! — "trace gases, including water vapor, are transported by the wind
//! fields using a shape preserving SLT scheme. This transport involves
//! indirect addressing on the Gaussian polar grid." (paper §4.7.1,
//! following Williamson & Rasch.)
//!
//! This implementation transports along latitude circles (cyclic in
//! longitude): departure points are found from the local zonal wind, the
//! field is interpolated there with a monotonicity-limited cubic Hermite
//! (the "shape preserving" part — no new extrema are created), and the
//! gathers charge the machine's list-vector hardware, which is exactly the
//! irregular-access pattern the IA benchmark isolates.

use sxsim::Vm;

/// Limited derivative estimate at node `i` of a cyclic sequence (Fritsch-
/// Carlson style): the harmonic-ish mean clipped to preserve monotonicity.
fn limited_slope(qm: f64, q0: f64, qp: f64) -> f64 {
    let d_left = q0 - qm;
    let d_right = qp - q0;
    if d_left * d_right <= 0.0 {
        return 0.0; // local extremum: flat slope preserves shape
    }
    let centered = 0.5 * (d_left + d_right);
    let bound = 2.0 * d_left.abs().min(d_right.abs());
    centered.signum() * centered.abs().min(bound)
}

/// Advect one cyclic row `q` by the (non-uniform) velocity `u_cells`
/// expressed in *cells per step* (u * dt / dx). Returns the transported
/// row. `vm` is charged for the departure-point arithmetic, the gathers
/// and the interpolation.
pub fn advect_row(vm: &mut Vm, q: &[f64], u_cells: &[f64]) -> Vec<f64> {
    let n = q.len();
    assert_eq!(u_cells.len(), n);
    assert!(n >= 4, "SLT needs at least 4 points");

    // Departure points and gather indices (real indirect addressing).
    let mut idx0 = vec![0usize; n];
    let mut frac = vec![0.0f64; n];
    for j in 0..n {
        let x = j as f64 - u_cells[j];
        let xf = x.floor();
        let mut i0 = (xf as i64).rem_euclid(n as i64) as usize;
        let mut f = x - xf;
        // Guard against f == 1.0 from floating point.
        if f >= 1.0 {
            i0 = (i0 + 1) % n;
            f = 0.0;
        }
        idx0[j] = i0;
        frac[j] = f;
    }

    // Gather the four-point stencils.
    let at = |i: usize| q[i % n];
    let mut out = vec![0.0f64; n];
    for j in 0..n {
        let i0 = idx0[j];
        let im = (i0 + n - 1) % n;
        let i1 = (i0 + 1) % n;
        let i2 = (i0 + 2) % n;
        let (qm, q0, q1, q2) = (at(im), at(i0), at(i1), at(i2));
        // Monotone Hermite on [i0, i1].
        let d0 = limited_slope(qm, q0, q1);
        let d1 = limited_slope(q0, q1, q2);
        let t = frac[j];
        let h00 = (1.0 + 2.0 * t) * (1.0 - t) * (1.0 - t);
        let h10 = t * (1.0 - t) * (1.0 - t);
        let h01 = t * t * (3.0 - 2.0 * t);
        let h11 = t * t * (t - 1.0);
        out[j] = h00 * q0 + h10 * d0 + h01 * q1 + h11 * d1;
    }

    // Machine charging: departure arithmetic (vectorized), four gathers
    // through the list-vector unit, and the Hermite evaluation.
    use sxsim::{Access, VecOp, VopClass};
    // departure points: ~4 ops
    vm.charge_vector_op_repeated(
        &VecOp::new(n, VopClass::Add, &[Access::Stride(1)], &[Access::Stride(1)]),
        4,
    );
    // four gathers
    vm.charge_vector_op_repeated(
        &VecOp::new(n, VopClass::Logical, &[Access::Indexed], &[Access::Stride(1)]),
        4,
    );
    // slopes + limiter (~6 ops) and Hermite (~10 fused ops)
    vm.charge_vector_op_repeated(
        &VecOp::new(
            n,
            VopClass::Add,
            &[Access::Stride(1), Access::Stride(1)],
            &[Access::Stride(1)],
        ),
        6,
    );
    vm.charge_vector_op_repeated(
        &VecOp::new(
            n,
            VopClass::Fma,
            &[Access::Stride(1), Access::Stride(1)],
            &[Access::Stride(1)],
        ),
        10,
    );

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxsim::presets;

    fn vm() -> Vm {
        Vm::new(presets::sx4_benchmarked())
    }

    fn smooth_row(n: usize) -> Vec<f64> {
        (0..n)
            .map(|j| {
                let x = 2.0 * std::f64::consts::PI * j as f64 / n as f64;
                1.0 + 0.5 * x.sin() + 0.25 * (2.0 * x).cos()
            })
            .collect()
    }

    #[test]
    fn constant_field_is_invariant() {
        let mut vm = vm();
        let q = vec![7.5f64; 64];
        let u = vec![0.37f64; 64];
        let out = advect_row(&mut vm, &q, &u);
        assert!(out.iter().all(|&v| (v - 7.5).abs() < 1e-14));
    }

    #[test]
    fn integer_shift_is_exact() {
        let mut vm = vm();
        let q = smooth_row(48);
        let u = vec![3.0f64; 48];
        let out = advect_row(&mut vm, &q, &u);
        for j in 0..48 {
            let src = (j + 48 - 3) % 48;
            assert!((out[j] - q[src]).abs() < 1e-13, "j={j}");
        }
    }

    #[test]
    fn shape_preserving_no_new_extrema() {
        let mut vm = vm();
        // A step function: transport must not overshoot.
        let n = 64;
        let q: Vec<f64> = (0..n).map(|j| if (16..32).contains(&j) { 1.0 } else { 0.0 }).collect();
        let u = vec![0.4f64; n];
        let mut cur = q.clone();
        for _ in 0..50 {
            cur = advect_row(&mut vm, &cur, &u);
            let max = cur.iter().cloned().fold(f64::MIN, f64::max);
            let min = cur.iter().cloned().fold(f64::MAX, f64::min);
            assert!(max <= 1.0 + 1e-12, "overshoot {max}");
            assert!(min >= -1e-12, "undershoot {min}");
        }
    }

    #[test]
    fn smooth_profile_advects_with_small_error() {
        let mut vm = vm();
        let n = 128;
        let q = smooth_row(n);
        let u = vec![0.5f64; n];
        let mut cur = q.clone();
        // 2n steps at half a cell per step = one full revolution.
        for _ in 0..(2 * n) {
            cur = advect_row(&mut vm, &cur, &u);
        }
        let err: f64 = cur.iter().zip(&q).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        assert!(err < 0.05, "revolution error {err}");
    }

    #[test]
    fn mean_approximately_conserved() {
        let mut vm = vm();
        let n = 96;
        let q = smooth_row(n);
        let mean0: f64 = q.iter().sum::<f64>() / n as f64;
        let u: Vec<f64> = (0..n).map(|j| 0.3 + 0.1 * (j as f64 * 0.2).sin()).collect();
        let mut cur = q;
        for _ in 0..100 {
            cur = advect_row(&mut vm, &cur, &u);
        }
        let mean1: f64 = cur.iter().sum::<f64>() / n as f64;
        assert!((mean1 - mean0).abs() < 0.02 * mean0.abs(), "{mean0} -> {mean1}");
    }

    #[test]
    fn charges_gather_traffic() {
        let mut vm = vm();
        let q = smooth_row(64);
        let u = vec![0.25f64; 64];
        let _ = advect_row(&mut vm, &q, &u);
        let c = vm.cost();
        assert!(c.cycles > 0.0);
        // The gathers should show up as indexed traffic (index words are
        // counted in the ledger's bytes).
        assert!(c.bytes > (64 * 8 * 8) as u64);
    }
}
