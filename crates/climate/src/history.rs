//! History tapes and restart records.
//!
//! The CCM2 benchmark "writes a simulated header file and a simulated
//! 'history tape' file. The history tape file is an unformatted, direct
//! access file so that if run on a multiprocessing system, different
//! processors could write different records representing data associated
//! with a specific latitude" (paper §4.5.1), and SUPER-UX offers
//! checkpoint/restart "by user or operator commands" (§2.6.2).
//!
//! This module implements both for the proxy model: a binary history-tape
//! encoding with one record per latitude, and a restart record that
//! round-trips the full model state bit-exactly. The encodings are real
//! (written with [`crate::wire`], parsed back, checksummed) so the I/O
//! benchmark moves honest payloads.

use crate::model::Ccm2Proxy;
use crate::resolution::Resolution;
use crate::wire::{WireReader, WireWriter};
use ncar_kernels::fft::C64;

/// Magic number at the head of every record ("NCAR" in ASCII).
const MAGIC: u32 = 0x4e43_4152;
/// Format version.
const VERSION: u16 = 1;

/// The header file written before the tape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TapeHeader {
    pub resolution: Resolution,
    pub step: u64,
    pub fields_per_record: u16,
}

impl TapeHeader {
    pub fn encode(&self) -> Vec<u8> {
        let mut b = WireWriter::with_capacity(32);
        b.put_u32(MAGIC);
        b.put_u16(VERSION);
        b.put_u16(self.fields_per_record);
        b.put_u64(self.step);
        b.put_u32(self.resolution.truncation() as u32);
        b.put_u32(self.resolution.nlat() as u32);
        b.put_u32(self.resolution.nlon() as u32);
        b.into_vec()
    }

    pub fn decode(data: &[u8]) -> Result<TapeHeader, String> {
        let mut buf = WireReader::new(data);
        if buf.remaining() < 28 {
            return Err("header truncated".into());
        }
        if buf.get_u32() != MAGIC {
            return Err("bad magic".into());
        }
        let version = buf.get_u16();
        if version != VERSION {
            return Err(format!("unsupported version {version}"));
        }
        let fields = buf.get_u16();
        let step = buf.get_u64();
        let trunc = buf.get_u32() as usize;
        let _nlat = buf.get_u32();
        let _nlon = buf.get_u32();
        let resolution = Resolution::ALL
            .into_iter()
            .find(|r| r.truncation() == trunc)
            .ok_or_else(|| format!("unknown truncation T{trunc}"))?;
        Ok(TapeHeader { resolution, step, fields_per_record: fields })
    }
}

/// One direct-access record: every field's values along one latitude
/// circle (all levels), plus a checksum.
pub fn encode_latitude_record(model: &Ccm2Proxy, lat: usize) -> Vec<u8> {
    let res = model.config.resolution;
    let (nlon, nlev) = (res.nlon(), res.nlev());
    let mut b = WireWriter::with_capacity(16 + nlev * nlon * 8);
    b.put_u32(MAGIC);
    b.put_u32(lat as u32);
    let mut checksum = 0.0f64;
    for lev in &model.q {
        for &v in &lev[lat * nlon..(lat + 1) * nlon] {
            b.put_f64(v);
            checksum += v;
        }
    }
    b.put_f64(checksum);
    b.into_vec()
}

/// Parse a latitude record back; verifies magic and checksum.
pub fn decode_latitude_record(
    data: &[u8],
    nlon: usize,
    nlev: usize,
) -> Result<(usize, Vec<f64>), String> {
    let mut buf = WireReader::new(data);
    if buf.remaining() < 8 + nlev * nlon * 8 + 8 {
        return Err("record truncated".into());
    }
    if buf.get_u32() != MAGIC {
        return Err("bad record magic".into());
    }
    let lat = buf.get_u32() as usize;
    let mut values = Vec::with_capacity(nlev * nlon);
    let mut checksum = 0.0f64;
    for _ in 0..nlev * nlon {
        let v = buf.get_f64();
        checksum += v;
        values.push(v);
    }
    let stored = buf.get_f64();
    if (stored - checksum).abs() > 1e-9 * checksum.abs().max(1.0) {
        return Err("checksum mismatch".into());
    }
    Ok((lat, values))
}

/// A complete restart record: the full prognostic state — both leapfrog
/// time levels, so a restarted run continues bit-exactly.
#[derive(Debug, Clone)]
pub struct Restart {
    pub header: TapeHeader,
    pub phi: Vec<Vec<C64>>,
    pub phi_prev: Vec<Vec<C64>>,
    pub delta: Vec<Vec<C64>>,
    pub delta_prev: Vec<Vec<C64>>,
    pub zeta: Vec<Vec<C64>>,
    pub zeta_prev: Vec<Vec<C64>>,
    pub q: Vec<Vec<f64>>,
}

/// Write the model's state as a restart record.
pub fn checkpoint(model: &Ccm2Proxy) -> Vec<u8> {
    let res = model.config.resolution;
    let header = TapeHeader { resolution: res, step: model.steps as u64, fields_per_record: 7 };
    let mut b = WireWriter::default();
    b.put_bytes(&header.encode());
    let state = model.state();
    let put_spec = |b: &mut WireWriter, field: &[Vec<C64>]| {
        for lev in field {
            for c in lev {
                b.put_f64(c.re);
                b.put_f64(c.im);
            }
        }
    };
    for field in
        [state.phi, state.phi_prev, state.delta, state.delta_prev, state.zeta, state.zeta_prev]
    {
        put_spec(&mut b, field);
    }
    for lev in state.q {
        for &v in lev {
            b.put_f64(v);
        }
    }
    b.into_vec()
}

/// Read a restart record back into structured state.
pub fn read_checkpoint(data: &[u8], nspec: usize) -> Result<Restart, String> {
    if data.len() < 28 {
        return Err("restart record shorter than its header".into());
    }
    let header = TapeHeader::decode(&data[..28])?;
    let mut buf = WireReader::new(&data[28..]);
    let res = header.resolution;
    let (nlev, nlon, nlat) = (res.nlev(), res.nlon(), res.nlat());
    let need = 6 * nlev * nspec * 16 + nlev * nlat * nlon * 8;
    if buf.remaining() < need {
        return Err(format!("restart truncated: {} < {need}", buf.remaining()));
    }
    let get_spec = |buf: &mut WireReader| -> Vec<Vec<C64>> {
        (0..nlev)
            .map(|_| (0..nspec).map(|_| C64::new(buf.get_f64(), buf.get_f64())).collect())
            .collect()
    };
    let phi = get_spec(&mut buf);
    let phi_prev = get_spec(&mut buf);
    let delta = get_spec(&mut buf);
    let delta_prev = get_spec(&mut buf);
    let zeta = get_spec(&mut buf);
    let zeta_prev = get_spec(&mut buf);
    let q = (0..nlev).map(|_| (0..nlat * nlon).map(|_| buf.get_f64()).collect()).collect();
    Ok(Restart { header, phi, phi_prev, delta, delta_prev, zeta, zeta_prev, q })
}

/// Restore a model from a restart record (resolution must match).
pub fn restore(model: &mut Ccm2Proxy, restart: &Restart) {
    assert_eq!(model.config.resolution, restart.header.resolution);
    model.set_state(
        restart.phi.clone(),
        restart.phi_prev.clone(),
        restart.delta.clone(),
        restart.delta_prev.clone(),
        restart.zeta.clone(),
        restart.zeta_prev.clone(),
        restart.q.clone(),
        restart.header.step as usize,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Ccm2Config;
    use sxsim::presets;

    fn model() -> Ccm2Proxy {
        Ccm2Proxy::new(Ccm2Config::benchmark(Resolution::T42), presets::sx4_benchmarked())
    }

    #[test]
    fn header_roundtrip() {
        let h = TapeHeader { resolution: Resolution::T106, step: 12345, fields_per_record: 7 };
        let back = TapeHeader::decode(&h.encode()).unwrap();
        assert_eq!(h, back);
    }

    #[test]
    fn header_rejects_corruption() {
        let h = TapeHeader { resolution: Resolution::T42, step: 1, fields_per_record: 4 };
        let mut bytes = h.encode();
        bytes[0] ^= 0xFF;
        assert!(TapeHeader::decode(&bytes).is_err());
    }

    #[test]
    fn latitude_record_roundtrip() {
        let m = model();
        let res = m.config.resolution;
        let rec = encode_latitude_record(&m, 10);
        let (lat, values) = decode_latitude_record(&rec, res.nlon(), res.nlev()).unwrap();
        assert_eq!(lat, 10);
        assert_eq!(values.len(), res.nlev() * res.nlon());
        assert_eq!(values[0], m.q[0][10 * res.nlon()]);
    }

    #[test]
    fn latitude_record_detects_bitflips() {
        let m = model();
        let res = m.config.resolution;
        let mut bytes = encode_latitude_record(&m, 3);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        let r = decode_latitude_record(&bytes, res.nlon(), res.nlev());
        assert!(r.is_err(), "corrupted record must not decode");
    }

    #[test]
    fn checkpoint_restart_is_bit_exact() {
        // Run two models; checkpoint one mid-flight, restore into a fresh
        // model, run both to the same step: identical state.
        let mut a = model();
        for _ in 0..3 {
            a.step(4);
        }
        let ckpt = checkpoint(&a);
        let restart = read_checkpoint(&ckpt, a.transform.nspec()).unwrap();
        let mut b = model();
        restore(&mut b, &restart);
        assert_eq!(b.steps, a.steps);
        for _ in 0..2 {
            a.step(4);
            b.step(4);
        }
        assert_eq!(a.mean_phi(0), b.mean_phi(0));
        assert_eq!(a.energy(0), b.energy(0));
        assert_eq!(a.q[0], b.q[0]);
    }

    #[test]
    fn truncated_checkpoint_is_an_error_not_a_panic() {
        assert!(read_checkpoint(b"short", 10).is_err());
        let m = model();
        let full = checkpoint(&m);
        let cut = &full[0..full.len() / 2];
        assert!(read_checkpoint(cut, m.transform.nspec()).is_err());
    }

    #[test]
    fn checkpoint_size_matches_history_accounting() {
        let m = model();
        let bytes = checkpoint(&m).len() as u64;
        // The restart portion of history_bytes_per_day should be the same
        // order of magnitude as a real checkpoint.
        assert!(bytes > 1 << 20, "checkpoint suspiciously small: {bytes}");
        assert!(bytes < m.history_bytes_per_day() * 4);
    }
}
