//! Column physics: the "physics computations involve only the vertical
//! column above each grid point and are thus numerically independent of
//! each other in the horizontal direction" (paper §4.7.1).
//!
//! The dominant member is the RADABS radiation kernel (§4.4), reused
//! directly from `ncar-kernels`; around it sit a moist-adjustment sweep
//! (PWR/LOG-heavy, like CCM2's convective parameterizations) and a
//! Newtonian relaxation that feeds heating back into the dynamics so the
//! model state actually responds to its physics.

use ncar_kernels::radabs::radabs;
use sxsim::{Cost, Vm};

/// Physics tendencies for one latitude band.
#[derive(Debug, Clone)]
pub struct PhysicsResult {
    /// Heating applied to the thickness/geopotential field, per column
    /// (flattened `ncol`), bounded and smooth.
    pub heating: Vec<f64>,
    /// Moisture source/sink per column.
    pub moistening: Vec<f64>,
    /// Ledger consumed.
    pub cost: Cost,
}

/// Run the column-physics package over `ncol` columns with `nlev` levels.
///
/// `phi` is the column-mean geopotential perturbation (one value per
/// column) and `q` the column moisture; both feed back through relaxation
/// terms so physics is a real part of the model's evolution, not a
/// decoration.
pub fn column_physics(vm: &mut Vm, phi: &[f64], q: &[f64], nlev: usize) -> PhysicsResult {
    let ncol = phi.len();
    assert_eq!(q.len(), ncol);
    let before = vm.cost();

    // Radiation: CCM2 computes both longwave absorptivities and the
    // shortwave (solar) transmission — two full pairwise passes.
    let lw = radabs(vm, ncol, nlev);
    let sw = radabs(vm, ncol, nlev);
    // Column radiative forcing: longwave absorption seen by the surface
    // level, offset by the column-mean shortwave transmission.
    let col_abs: f64 =
        (0..nlev).map(|k| lw.absorptivity[(nlev - 1) * nlev + k]).sum::<f64>() / nlev as f64;
    let col_sw: f64 = (0..nlev).map(|k| sw.absorptivity[k]).sum::<f64>() / nlev as f64;
    let col_abs = 0.7 * col_abs + 0.3 * col_sw;

    // Moist adjustment: saturation humidity via a Clausius-Clapeyron EXP
    // (warm columns hold more water), precipitation of the supersaturation
    // via PWR — the intrinsic-heavy part of CCM2 physics.
    let mut qsat = vec![0.0f64; ncol];
    let mut arg = vec![0.0f64; ncol];
    // arg = 1e-4 * phi: the column geopotential as a temperature proxy.
    vm.scale(&mut arg, 1.0e-4, phi);
    for a in &mut arg {
        *a = a.clamp(-3.0, 3.0);
    }
    vm.exp(&mut qsat, &arg);
    vm.scale_in_place(&mut qsat, 0.012);
    let mut precip = vec![0.0f64; ncol];
    let mut excess = vec![0.0f64; ncol];
    vm.sub(&mut excess, q, &qsat);
    for e in &mut excess {
        *e = e.max(0.0) + 1e-12;
    }
    let expo = vec![0.7f64; ncol];
    vm.pow(&mut precip, &excess, &expo);

    // Newtonian relaxation toward radiative equilibrium.
    let relax = 0.05;
    let mut heating = vec![0.0f64; ncol];
    vm.scale(&mut heating, -relax, phi);
    for h in heating.iter_mut() {
        *h += relax * 0.1 * col_abs;
    }
    let mut moistening = vec![0.0f64; ncol];
    vm.scale(&mut moistening, -0.01, &precip);

    let mut cost = vm.cost();
    cost.cycles -= before.cycles;
    cost.flops -= before.flops;
    cost.cray_flops -= before.cray_flops;
    cost.bytes -= before.bytes;
    PhysicsResult { heating, moistening, cost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxsim::presets;

    fn vm() -> Vm {
        Vm::new(presets::sx4_benchmarked())
    }

    #[test]
    fn heating_opposes_perturbation() {
        let mut vm = vm();
        let phi = vec![1.0, -1.0, 0.0, 2.0];
        let q = vec![0.01; 4];
        let r = column_physics(&mut vm, &phi, &q, 18);
        assert!(r.heating[0] < r.heating[1], "warm column must cool relative to cold");
        assert!(r.heating[3] < r.heating[0]);
    }

    #[test]
    fn moistening_is_a_sink_where_wet() {
        let mut vm = vm();
        let phi = vec![0.0; 4];
        // Specific-humidity-scale values around the ~0.012 saturation point.
        let q = vec![0.020, 0.035, 0.013, 0.001];
        let r = column_physics(&mut vm, &phi, &q, 18);
        // Precipitation removes moisture everywhere it exists.
        assert!(r.moistening.iter().all(|&m| m <= 0.0));
        assert!(r.moistening[1] < r.moistening[2], "wetter column rains more");
        assert!(r.moistening[0] < r.moistening[3]);
    }

    #[test]
    fn outputs_finite_and_bounded() {
        let mut vm = vm();
        let phi: Vec<f64> = (0..64).map(|i| (i as f64 * 0.3).sin() * 100.0).collect();
        let q: Vec<f64> = (0..64).map(|i| 0.02 * (i as f64 * 0.17).cos().abs()).collect();
        let r = column_physics(&mut vm, &phi, &q, 18);
        assert!(r.heating.iter().all(|h| h.is_finite() && h.abs() < 100.0));
        assert!(r.moistening.iter().all(|m| m.is_finite()));
    }

    #[test]
    fn physics_is_intrinsic_heavy() {
        let mut vm = vm();
        let phi = vec![0.1; 256];
        let q = vec![0.01; 256];
        let r = column_physics(&mut vm, &phi, &q, 18);
        assert!(
            r.cost.cray_flops > 1.5 * r.cost.flops as f64,
            "physics should be dominated by intrinsics"
        );
    }

    #[test]
    fn cost_scales_with_columns() {
        // Compare stream-dominated batch sizes (small batches are pipe-fill
        // dominated on a vector machine, which is its own correct physics).
        let mut vm1 = vm();
        let mut vm2 = vm();
        let r1 = column_physics(&mut vm1, &vec![0.0; 512], &vec![0.01; 512], 18);
        let r2 = column_physics(&mut vm2, &vec![0.0; 4096], &vec![0.01; 4096], 18);
        assert!(r2.cost.cycles > 4.0 * r1.cost.cycles);
    }
}
