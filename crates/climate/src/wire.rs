//! Minimal big-endian wire encoding used by the history-tape and restart
//! records (a local replacement for the `bytes` crate: the workspace
//! builds hermetically, with no external dependencies).
//!
//! Semantics follow `bytes::Buf`: readers panic on underflow, so decoders
//! check [`WireReader::remaining`] before pulling fixed-size fields —
//! exactly the discipline `history.rs` already follows.

/// Append-only binary writer.
#[derive(Debug, Default, Clone)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    pub fn with_capacity(n: usize) -> WireWriter {
        WireWriter { buf: Vec::with_capacity(n) }
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finish writing and take the encoded record.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor over an encoded record.
#[derive(Debug, Clone, Copy)]
pub struct WireReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    pub fn new(data: &'a [u8]) -> WireReader<'a> {
        WireReader { data, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take<const N: usize>(&mut self) -> [u8; N] {
        let s = &self.data[self.pos..self.pos + N];
        self.pos += N;
        s.try_into().expect("slice length is N by construction")
    }

    pub fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take::<2>())
    }

    pub fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take::<4>())
    }

    pub fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take::<8>())
    }

    pub fn get_f64(&mut self) -> f64 {
        f64::from_be_bytes(self.take::<8>())
    }

    /// Split off the next `n` bytes as a sub-reader.
    pub fn sub_reader(&mut self, n: usize) -> WireReader<'a> {
        let r = WireReader::new(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_field_types() {
        let mut w = WireWriter::with_capacity(32);
        w.put_u16(0xBEEF);
        w.put_u32(0x4e43_4152);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-1234.5678);
        let v = w.into_vec();
        assert_eq!(v.len(), 2 + 4 + 8 + 8);
        let mut r = WireReader::new(&v);
        assert_eq!(r.get_u16(), 0xBEEF);
        assert_eq!(r.get_u32(), 0x4e43_4152);
        assert_eq!(r.get_u64(), u64::MAX - 1);
        assert_eq!(r.get_f64(), -1234.5678);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn sub_reader_advances_parent() {
        let mut w = WireWriter::default();
        w.put_u32(7);
        w.put_u32(9);
        let v = w.into_vec();
        let mut r = WireReader::new(&v);
        let mut head = r.sub_reader(4);
        assert_eq!(head.get_u32(), 7);
        assert_eq!(r.get_u32(), 9);
    }

    #[test]
    #[should_panic]
    fn underflow_panics() {
        let v = vec![1u8, 2];
        let mut r = WireReader::new(&v);
        r.get_u32();
    }
}
