//! Big-endian wire encoding for the history-tape and restart records.
//!
//! The codec itself was hoisted into the suite framework
//! ([`ncar_suite::wire`]) so the `sxd` serving daemon can reuse it for
//! cache-key canonicalization; this module re-exports it under the name
//! the history-tape code has always used. Semantics are unchanged:
//! `get_*` readers panic on underflow (decoders check
//! [`WireReader::remaining`] first — the discipline `history.rs` follows),
//! and the `try_get_*` family decodes untrusted bytes fallibly.

pub use ncar_suite::wire::{WireError, WireReader, WireWriter, MAX_FIELD_BYTES};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_codec_roundtrips_history_fields() {
        let mut w = WireWriter::with_capacity(16);
        w.put_u32(0x4e43_4152);
        w.put_f64(273.15);
        let v = w.into_vec();
        let mut r = WireReader::new(&v);
        assert_eq!(r.get_u32(), 0x4e43_4152);
        assert_eq!(r.get_f64(), 273.15);
        assert_eq!(r.remaining(), 0);
    }
}
