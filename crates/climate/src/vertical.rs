//! Vertical normal modes of an L18 model.
//!
//! "The vertical and temporal aspects of the model are represented by
//! finite-difference approximations" (paper §4.7.1). Linearizing the
//! primitive equations about a resting stratified state decouples the
//! levels into vertical normal modes, each obeying shallow-water dynamics
//! with its own *equivalent depth*: one deep external mode plus
//! successively shallower internal modes. This module computes those
//! depths for the proxy from the discrete vertical-structure operator —
//! a symmetric tridiagonal eigenproblem solved with the classic QL
//! algorithm with implicit shifts.

/// Eigenvalues of a symmetric tridiagonal matrix (diagonal `d`,
/// off-diagonal `e`, `e.len() == d.len() - 1`), ascending.
///
/// QL with implicit (Wilkinson) shifts — the standard EISPACK `tql1`.
pub fn sym_tridiag_eigenvalues(d: &[f64], e: &[f64]) -> Vec<f64> {
    let n = d.len();
    assert!(n >= 1);
    assert_eq!(e.len(), n.saturating_sub(1));
    let mut d = d.to_vec();
    // Work array with a trailing zero, as the classic algorithm wants.
    let mut e: Vec<f64> = e.iter().copied().chain(std::iter::once(0.0)).collect();

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small off-diagonal element to split at.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            assert!(iter < 50, "QL failed to converge");
            // Wilkinson shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                f = 0.0;
                let _ = f;
            }
            if r == 0.0 && m > l + 1 {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    d.sort_by(f64::total_cmp);
    d
}

/// Gravity x mean depth of the external mode (m²/s²): g * 8 km.
pub const EXTERNAL_PHIBAR: f64 = 9.81 * 8000.0;

/// Equivalent depths (as geopotential Φ̄ = g·h_k, m²/s²) for an `nlev`
/// model, descending from the external mode.
///
/// The vertical-structure operator is the discrete
/// `-d/dσ (S(σ) d/dσ)` with Neumann (rigid lid / flat ground) boundaries
/// and a static-stability profile `S` that strengthens aloft, as real
/// atmospheres do. Its null mode is the external mode; the positive
/// eigenvalues map to internal-mode depths `Φ̄_k = C / λ_k`.
pub fn equivalent_depths(nlev: usize) -> Vec<f64> {
    assert!(nlev >= 1);
    if nlev == 1 {
        return vec![EXTERNAL_PHIBAR];
    }
    // Stability at interfaces: larger near the model top (stratosphere).
    let stab = |k: usize| {
        let sigma = (k as f64 + 1.0) / nlev as f64; // interface below level k
        1.0 + 3.0 * (1.0 - sigma).powi(2)
    };
    let mut diag = vec![0.0f64; nlev];
    let mut off = vec![0.0f64; nlev - 1];
    for k in 0..nlev {
        let up = if k > 0 { stab(k - 1) } else { 0.0 }; // Neumann at top
        let dn = if k + 1 < nlev { stab(k) } else { 0.0 }; // Neumann at bottom
        diag[k] = (up + dn) * (nlev * nlev) as f64;
        if k + 1 < nlev {
            off[k] = -stab(k) * (nlev * nlev) as f64;
        }
    }
    let eig = sym_tridiag_eigenvalues(&diag, &off);
    // eig[0] ~ 0 is the external mode; internal depths follow 1/lambda,
    // normalized so the first internal mode sits near 1/9 of the external
    // (the canonical ~25:1 external:first-internal phase-speed ratio
    // squared would be harsher; the proxy uses a gentler ladder so every
    // mode remains resolvable at the Table 4 time steps).
    let c = EXTERNAL_PHIBAR / 4.0 * eig[1];
    let mut depths = Vec::with_capacity(nlev);
    depths.push(EXTERNAL_PHIBAR);
    for &l in &eig[1..] {
        depths.push(c / l);
    }
    depths
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Discrete Dirichlet Laplacian has eigenvalues 2 - 2 cos(k pi / (n+1)).
    #[test]
    fn ql_matches_known_laplacian_spectrum() {
        let n = 12;
        let d = vec![2.0; n];
        let e = vec![-1.0; n - 1];
        let eig = sym_tridiag_eigenvalues(&d, &e);
        for (i, &l) in eig.iter().enumerate() {
            let exact =
                2.0 - 2.0 * ((i + 1) as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos();
            assert!((l - exact).abs() < 1e-10, "eig[{i}] = {l} vs {exact}");
        }
    }

    #[test]
    fn ql_handles_diagonal_matrix() {
        let d = vec![3.0, -1.0, 7.0, 0.5];
        let e = vec![0.0; 3];
        let eig = sym_tridiag_eigenvalues(&d, &e);
        assert_eq!(eig, vec![-1.0, 0.5, 3.0, 7.0]);
    }

    #[test]
    fn ql_2x2_analytic() {
        // [[1, 2], [2, 1]] has eigenvalues -1 and 3.
        let eig = sym_tridiag_eigenvalues(&[1.0, 1.0], &[2.0]);
        assert!((eig[0] + 1.0).abs() < 1e-12);
        assert!((eig[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn ql_trace_preserved() {
        let d = vec![1.0, 4.0, -2.0, 0.3, 5.5, 2.2];
        let e = vec![0.7, -1.1, 0.2, 2.0, -0.5];
        let eig = sym_tridiag_eigenvalues(&d, &e);
        let trace: f64 = d.iter().sum();
        let sum: f64 = eig.iter().sum();
        assert!((trace - sum).abs() < 1e-9);
    }

    #[test]
    fn depths_are_positive_descending_and_complete() {
        let depths = equivalent_depths(18);
        assert_eq!(depths.len(), 18);
        assert!(depths.iter().all(|&d| d > 0.0));
        for w in depths.windows(2) {
            assert!(w[0] > w[1], "depths must descend: {w:?}");
        }
    }

    #[test]
    fn external_mode_is_8km() {
        let depths = equivalent_depths(18);
        assert!((depths[0] - EXTERNAL_PHIBAR).abs() < 1e-9);
        // First internal mode is several times shallower.
        assert!(depths[1] < depths[0] / 2.0);
        // The shallowest mode is still dynamically meaningful.
        assert!(depths[17] > 1.0);
    }

    #[test]
    fn neumann_operator_has_a_null_mode() {
        // Rebuild the operator and check its smallest eigenvalue ~ 0.
        let nlev = 10;
        let stab = |k: usize| {
            let sigma = (k as f64 + 1.0) / nlev as f64;
            1.0 + 3.0 * (1.0 - sigma).powi(2)
        };
        let mut diag = vec![0.0f64; nlev];
        let mut off = vec![0.0f64; nlev - 1];
        for k in 0..nlev {
            let up = if k > 0 { stab(k - 1) } else { 0.0 };
            let dn = if k + 1 < nlev { stab(k) } else { 0.0 };
            diag[k] = (up + dn) * (nlev * nlev) as f64;
            if k + 1 < nlev {
                off[k] = -stab(k) * (nlev * nlev) as f64;
            }
        }
        let eig = sym_tridiag_eigenvalues(&diag, &off);
        assert!(eig[0].abs() < 1e-6 * eig[eig.len() - 1], "null mode: {}", eig[0]);
        assert!(eig[1] > 0.0);
    }
}
