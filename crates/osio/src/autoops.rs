//! Automatic, unattended operation (paper §2.6.1): "the system can be
//! preprogrammed to power on, boot, enter multi-user mode, and
//! shutdown-poweroff under any number of programmable scenarios."
//!
//! A small deterministic state machine over simulated time: operators
//! program scenarios (time → action); the console executes them in order,
//! enforcing the legal state transitions, and keeps an auditable log.

/// Machine states, in boot order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SystemState {
    PoweredOff,
    PoweredOn,
    Booted,
    MultiUser,
}

/// Operator-programmable actions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    PowerOn,
    Boot,
    EnterMultiUser,
    Shutdown,
    PowerOff,
    /// "Any operation which can be determined by software and responded to
    /// by closing a relay or executing a script."
    RunScript(&'static str),
}

/// One scheduled step of a scenario.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioStep {
    pub at_s: f64,
    pub action: Action,
}

/// The operator console.
#[derive(Debug)]
pub struct Console {
    pub state: SystemState,
    pub log: Vec<(f64, String)>,
}

impl Console {
    pub fn new() -> Console {
        Console { state: SystemState::PoweredOff, log: Vec::new() }
    }

    /// Apply one action at simulated time `now_s`. Illegal transitions are
    /// refused (and logged), as a real sequencer interlock would.
    pub fn apply(&mut self, now_s: f64, action: Action) -> Result<SystemState, String> {
        use Action::*;
        use SystemState::*;
        let next = match (self.state, action) {
            (PoweredOff, PowerOn) => Ok(PoweredOn),
            (PoweredOn, Boot) => Ok(Booted),
            (Booted, EnterMultiUser) => Ok(MultiUser),
            (MultiUser, Shutdown) => Ok(Booted),
            (Booted, PowerOff) | (PoweredOn, PowerOff) => Ok(PoweredOff),
            (s, RunScript(name)) if s >= Booted => {
                self.log.push((now_s, format!("script {name}")));
                return Ok(self.state);
            }
            (s, a) => Err(format!("illegal transition: {a:?} while {s:?}")),
        };
        match next {
            Ok(n) => {
                self.log.push((now_s, format!("{action:?} -> {n:?}")));
                self.state = n;
                Ok(n)
            }
            Err(e) => {
                self.log.push((now_s, format!("REFUSED {e}")));
                Err(e)
            }
        }
    }

    /// Run a programmed scenario (steps sorted by time). Returns the final
    /// state; refusals do not abort the scenario (the sequencer moves on).
    pub fn run_scenario(&mut self, steps: &[ScenarioStep]) -> SystemState {
        let mut sorted = steps.to_vec();
        sorted.sort_by(|a, b| a.at_s.total_cmp(&b.at_s));
        for step in sorted {
            let _ = self.apply(step.at_s, step.action);
        }
        self.state
    }
}

impl Default for Console {
    fn default() -> Self {
        Self::new()
    }
}

/// The standard operatorless week-night scenario: power on before the
/// batch window, come up multi-user, run the backup script, shut down at
/// dawn.
pub fn night_scenario() -> Vec<ScenarioStep> {
    vec![
        ScenarioStep { at_s: 0.0, action: Action::PowerOn },
        ScenarioStep { at_s: 60.0, action: Action::Boot },
        ScenarioStep { at_s: 180.0, action: Action::EnterMultiUser },
        ScenarioStep { at_s: 3600.0, action: Action::RunScript("sxbackstore-sweep") },
        ScenarioStep { at_s: 28_800.0, action: Action::Shutdown },
        ScenarioStep { at_s: 28_860.0, action: Action::PowerOff },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn night_scenario_round_trips_to_off() {
        let mut c = Console::new();
        let end = c.run_scenario(&night_scenario());
        assert_eq!(end, SystemState::PoweredOff);
        // Every step including the script is in the audit log.
        assert_eq!(c.log.len(), 6);
        assert!(c.log.iter().any(|(_, l)| l.contains("sxbackstore-sweep")));
    }

    #[test]
    fn interlock_refuses_illegal_transitions() {
        let mut c = Console::new();
        assert!(c.apply(0.0, Action::Boot).is_err(), "cannot boot while off");
        assert!(c.apply(1.0, Action::EnterMultiUser).is_err());
        assert_eq!(c.state, SystemState::PoweredOff);
        assert!(c.log.iter().all(|(_, l)| l.starts_with("REFUSED")));
    }

    #[test]
    fn scripts_need_a_booted_system() {
        let mut c = Console::new();
        assert!(c.apply(0.0, Action::RunScript("x")).is_err());
        c.apply(1.0, Action::PowerOn).unwrap();
        c.apply(2.0, Action::Boot).unwrap();
        assert!(c.apply(3.0, Action::RunScript("x")).is_ok());
        assert_eq!(c.state, SystemState::Booted, "scripts do not change state");
    }

    #[test]
    fn out_of_order_programming_is_sorted() {
        let mut c = Console::new();
        let steps = vec![
            ScenarioStep { at_s: 60.0, action: Action::Boot },
            ScenarioStep { at_s: 0.0, action: Action::PowerOn },
        ];
        assert_eq!(c.run_scenario(&steps), SystemState::Booted);
    }

    #[test]
    fn shutdown_returns_to_single_user_then_off() {
        let mut c = Console::new();
        c.apply(0.0, Action::PowerOn).unwrap();
        c.apply(1.0, Action::Boot).unwrap();
        c.apply(2.0, Action::EnterMultiUser).unwrap();
        assert_eq!(c.apply(3.0, Action::Shutdown).unwrap(), SystemState::Booted);
        assert_eq!(c.apply(4.0, Action::PowerOff).unwrap(), SystemState::PoweredOff);
    }
}
