//! The I/O, HIPPI and NETWORK benchmarks of §4.5.
//!
//! - I/O (§4.5.1): reads initial climate-model data and writes the
//!   simulated header + "history tape" — an unformatted direct-access file
//!   with one record per latitude, run for multiple model resolutions;
//! - HIPPI (§4.5.2): raw HIPPI packets of varying sizes, single and
//!   multiple concurrent transfers;
//! - NETWORK (§4.5.3): FDDI/IP data-transfer and non-data-transfer
//!   commands.
//!
//! The paper omits its results as "voluminous"; these drivers regenerate
//! representative tables against the modelled channels.

use crate::chan::Channel;
use crate::sfs::Sfs;
use ccm_proxy::Resolution;
use ncar_suite::{Series, Table};

/// One I/O-benchmark row: a resolution's history-tape write.
#[derive(Debug, Clone, Copy)]
pub struct IoPoint {
    pub resolution: Resolution,
    pub bytes: u64,
    pub records: usize,
    pub write_blocked_s: f64,
    pub durable_s: f64,
    pub read_s: f64,
}

/// History-tape geometry for one resolution: one direct-access record per
/// latitude ("different processors could write different records
/// representing data associated with a specific latitude").
pub fn history_tape(res: Resolution) -> (u64, usize) {
    let fields = 8 * res.nlev() + 16;
    let bytes = (fields * res.ncols() * 8) as u64;
    (bytes, res.nlat())
}

/// Run the I/O benchmark across the Table 4 resolutions.
pub fn io_benchmark() -> Vec<IoPoint> {
    Resolution::ALL
        .iter()
        .map(|&res| {
            let mut fs = Sfs::benchmarked();
            let (bytes, records) = history_tape(res);
            // Header file first (small, synchronous by nature).
            let header = fs.write(0.0, 64 * 1024, 1);
            let w = fs.write(header.blocked_s, bytes, records);
            let read_s = fs.read(bytes, records, false);
            IoPoint {
                resolution: res,
                bytes,
                records,
                write_blocked_s: header.blocked_s + w.blocked_s,
                durable_s: w.durable_s,
                read_s,
            }
        })
        .collect()
}

/// Render the I/O benchmark as a table.
pub fn io_table() -> Table {
    let mut t = Table::new(
        "I/O benchmark: history-tape write/read per resolution (SFS, async write-back through the XMU)",
        &["Resolution", "MB", "Records", "App-blocked s", "Durable s", "Read s", "App MB/s"],
    );
    for p in io_benchmark() {
        let mb = p.bytes as f64 / 1e6;
        t.row(&[
            p.resolution.name(),
            format!("{mb:.1}"),
            format!("{}", p.records),
            format!("{:.3}", p.write_blocked_s),
            format!("{:.2}", p.durable_s),
            format!("{:.2}", p.read_s),
            format!("{:.0}", mb / p.write_blocked_s),
        ]);
    }
    t
}

/// HIPPI benchmark: throughput vs packet size for 1 and 4 concurrent
/// transfers of a fixed 256 MB volume.
pub fn hippi_benchmark() -> Vec<Series> {
    let ch = Channel::hippi();
    let volume: u64 = 256 << 20;
    let mut out = Vec::new();
    for &streams in &[1usize, 4] {
        let mut s = Series::new(
            format!("{streams} concurrent transfer(s)"),
            "packet bytes",
            "MB/s aggregate",
        );
        let mut packet = 4096usize;
        while packet <= (4 << 20) {
            let packets = (volume as usize).div_ceil(packet);
            // Each stream sends its share; the channel serializes fairly.
            let secs = packets as f64 * ch.latency_s / streams as f64
                + volume as f64 * streams as f64 / ch.bytes_per_s;
            let aggregate = (volume as f64 * streams as f64) / secs / 1e6;
            s.push(packet as f64, aggregate);
            packet *= 4;
        }
        out.push(s);
    }
    out
}

/// Time for one HIPPI interoperability pass (used by PRODLOAD's per-job
/// HIPPI component): sweep the packet ladder once.
pub fn hippi_test_seconds() -> f64 {
    let ch = Channel::hippi();
    let volume: u64 = 256 << 20;
    let mut total = 0.0;
    let mut packet = 4096usize;
    while packet <= (4 << 20) {
        let packets = (volume as usize).div_ceil(packet);
        total += ch.transfer_seconds_ops(volume, packets);
        packet *= 4;
    }
    total
}

/// NETWORK benchmark: the shell-script's command list against the FDDI/IP
/// model, split into data-transfer and non-data-transfer commands.
pub fn network_table() -> Table {
    let fddi = Channel::fddi();
    let mut t = Table::new(
        "NETWORK benchmark: FDDI/IP external-network commands",
        &["Command", "Kind", "Bytes", "Seconds", "MB/s"],
    );
    let data_cmds: &[(&str, u64)] = &[
        ("ftp put 100MB", 100_000_000),
        ("ftp get 100MB", 100_000_000),
        ("rcp 10MB", 10_000_000),
        ("nfs read 1MB x64", 64_000_000),
    ];
    for (cmd, bytes) in data_cmds {
        // NFS-style traffic pays per-block latency.
        let ops = if cmd.contains("nfs") { 64 * 128 } else { 1 + (bytes / 8_000_000) as usize };
        let secs = fddi.transfer_seconds_ops(*bytes, ops);
        t.row(&[
            cmd.to_string(),
            "data".into(),
            format!("{bytes}"),
            format!("{secs:.2}"),
            format!("{:.2}", *bytes as f64 / secs / 1e6),
        ]);
    }
    let nodata_cmds: &[(&str, usize)] =
        &[("ping", 2), ("hostname lookup", 2), ("rsh true", 6), ("telnet connect", 8)];
    for (cmd, round_trips) in nodata_cmds {
        let secs = *round_trips as f64 * 2.0 * fddi.latency_s;
        t.row(&[cmd.to_string(), "non-data".into(), "0".into(), format!("{secs:.4}"), "-".into()]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_covers_all_resolutions_and_scales() {
        let pts = io_benchmark();
        assert_eq!(pts.len(), Resolution::ALL.len());
        // Larger resolutions write more and take longer to become durable.
        for w in pts.windows(2) {
            assert!(w[1].bytes > w[0].bytes);
            assert!(w[1].durable_s > w[0].durable_s);
        }
    }

    #[test]
    fn app_blocking_far_below_durability() {
        // The XMU staging is the whole point of SFS.
        for p in io_benchmark() {
            assert!(p.write_blocked_s < 0.3 * p.durable_s, "{:?}", p.resolution);
        }
    }

    #[test]
    fn hippi_throughput_grows_with_packet_size() {
        let series = hippi_benchmark();
        let single = &series[0];
        let multi = &series[1];
        // One stream is latency-bound at small packets...
        assert!(
            single.points.last().unwrap().1 > 2.0 * single.points.first().unwrap().1,
            "{:?}",
            single.points
        );
        // ...while concurrent transfers amortize the per-packet latency.
        assert!(multi.points.first().unwrap().1 > single.points.first().unwrap().1);
        for s in &series {
            assert!(s.points.last().unwrap().1 >= s.points.first().unwrap().1);
            assert!(s.peak() <= 92.5, "HIPPI cannot beat line rate");
        }
    }

    #[test]
    fn hippi_test_duration_sane() {
        let s = hippi_test_seconds();
        assert!(s > 10.0 && s < 600.0, "{s}");
    }

    #[test]
    fn network_table_has_both_kinds() {
        let t = network_table();
        let render = t.render();
        assert!(render.contains("data"));
        assert!(render.contains("non-data"));
        assert!(render.contains("ftp put 100MB"));
        assert_eq!(t.rows.len(), 8);
    }

    #[test]
    fn ftp_rate_below_fddi_line_rate() {
        let t = network_table();
        let ftp = &t.rows[0];
        let rate: f64 = ftp[4].parse().unwrap();
        assert!(rate > 4.0 && rate <= 9.0, "{rate} MB/s");
    }
}
