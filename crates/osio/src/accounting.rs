//! NQS accounting and status reporting (paper §2.6.3: "NQS queues, queue
//! complexes, and the full range of individual queue parameters and
//! accounting facilities are supported").
//!
//! Turns a completed [`crate::nqs::Schedule`] into per-job accounting
//! records (wait time, wall time, CPU-seconds, stretch relative to solo)
//! and a qstat-style summary.

use crate::nqs::{JobSpec, Schedule};
use ncar_suite::Table;

/// One job's accounting record.
#[derive(Debug, Clone)]
pub struct JobAccount {
    pub name: String,
    pub procs: usize,
    /// Seconds spent queued before dispatch.
    pub wait_s: f64,
    /// Wall seconds while running.
    pub wall_s: f64,
    /// Processor-seconds consumed (procs x wall).
    pub cpu_s: f64,
    /// Wall time relative to the job's solo runtime (>= 1; co-scheduling
    /// contention and OS multiplexing).
    pub stretch: f64,
}

/// Build accounting records from a schedule.
pub fn account(jobs: &[JobSpec], schedule: &Schedule) -> Vec<JobAccount> {
    assert_eq!(jobs.len(), schedule.records.len());
    jobs.iter()
        .zip(&schedule.records)
        .map(|(job, rec)| {
            // Wait = dispatch minus the instant the job became eligible
            // (after its dependencies finished).
            let eligible =
                job.after.iter().map(|&d| schedule.records[d].end_s).fold(0.0f64, f64::max);
            let wall = rec.end_s - rec.start_s;
            JobAccount {
                name: job.name.clone(),
                procs: job.procs,
                wait_s: (rec.start_s - eligible).max(0.0),
                wall_s: wall,
                cpu_s: wall * job.procs as f64,
                stretch: if job.solo_seconds > 0.0 { wall / job.solo_seconds } else { 1.0 },
            }
        })
        .collect()
}

/// Aggregate utilization of the node over the schedule.
pub fn utilization(jobs: &[JobSpec], schedule: &Schedule, node_procs: usize) -> f64 {
    let cpu: f64 = account(jobs, schedule).iter().map(|a| a.cpu_s).sum();
    if schedule.makespan_s == 0.0 {
        return 0.0;
    }
    cpu / (schedule.makespan_s * node_procs as f64)
}

/// Render a qacct-style table.
pub fn qacct_table(jobs: &[JobSpec], schedule: &Schedule) -> Table {
    let mut t =
        Table::new("NQS accounting", &["Job", "Procs", "Wait s", "Wall s", "CPU s", "Stretch"]);
    for a in account(jobs, schedule) {
        t.row(&[
            a.name,
            format!("{}", a.procs),
            format!("{:.1}", a.wait_s),
            format!("{:.1}", a.wall_s),
            format!("{:.1}", a.cpu_s),
            format!("{:.3}", a.stretch),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nqs::Nqs;
    use sxsim::{presets, Node};

    fn job(name: &str, procs: usize, secs: f64, after: Vec<usize>) -> JobSpec {
        JobSpec {
            name: name.into(),
            procs,
            memory_bytes: 256 << 20,
            solo_seconds: secs,
            bytes_per_cycle_per_proc: 30.0,
            block: 0,
            after,
        }
    }

    #[test]
    fn concurrent_jobs_have_no_wait() {
        let node = Node::new(presets::sx4_benchmarked());
        let nqs = Nqs::whole_node(&node);
        let jobs = vec![job("a", 8, 100.0, vec![]), job("b", 8, 100.0, vec![])];
        let s = nqs.run(&jobs).unwrap();
        let acc = account(&jobs, &s);
        assert_eq!(acc[0].wait_s, 0.0);
        assert_eq!(acc[1].wait_s, 0.0);
        // Co-scheduled: stretch slightly above 1.
        assert!(acc[0].stretch >= 1.0 && acc[0].stretch < 1.05);
    }

    #[test]
    fn queued_job_accrues_wait_not_stretch_before_dispatch() {
        let node = Node::new(presets::sx4_benchmarked());
        let nqs = Nqs::whole_node(&node);
        let jobs = vec![job("big-a", 24, 100.0, vec![]), job("big-b", 24, 100.0, vec![])];
        let s = nqs.run(&jobs).unwrap();
        let acc = account(&jobs, &s);
        assert!(acc[1].wait_s > 90.0, "second job must queue: {}", acc[1].wait_s);
        // Once running alone, it runs at solo speed.
        assert!((acc[1].stretch - 1.0).abs() < 0.01);
    }

    #[test]
    fn dependency_wait_measured_from_eligibility() {
        let node = Node::new(presets::sx4_benchmarked());
        let nqs = Nqs::whole_node(&node);
        let jobs = vec![job("first", 4, 50.0, vec![]), job("second", 4, 50.0, vec![0])];
        let s = nqs.run(&jobs).unwrap();
        let acc = account(&jobs, &s);
        // It became eligible exactly when its dependency finished and the
        // node was free, so it never *waited*.
        assert!(acc[1].wait_s < 1e-9, "{}", acc[1].wait_s);
    }

    #[test]
    fn utilization_bounded_and_sensible() {
        let node = Node::new(presets::sx4_benchmarked());
        let nqs = Nqs::whole_node(&node);
        let jobs: Vec<JobSpec> = (0..4).map(|i| job(&format!("j{i}"), 8, 100.0, vec![])).collect();
        let s = nqs.run(&jobs).unwrap();
        let u = utilization(&jobs, &s, 32);
        assert!(u > 0.9 && u <= 1.0, "four 8-proc jobs should pack the node: {u}");
    }

    #[test]
    fn qacct_renders() {
        let node = Node::new(presets::sx4_benchmarked());
        let nqs = Nqs::whole_node(&node);
        let jobs = vec![job("render-me", 2, 10.0, vec![])];
        let s = nqs.run(&jobs).unwrap();
        let text = qacct_table(&jobs, &s).render();
        assert!(text.contains("render-me"));
        assert!(text.contains("Stretch"));
    }
}
