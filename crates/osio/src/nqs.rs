//! The NQS batch subsystem and SUPER-UX Resource Blocks (paper §2.6.3,
//! §2.6.4): queued batch jobs, FIFO dispatch within processor/memory
//! limits, logical scheduling groups ("Resource Blocks") mapped onto the
//! node's processors, and checkpoint/restart (§2.6.2).
//!
//! Scheduling is a discrete-event simulation in simulated seconds: running
//! jobs progress concurrently, slowed by the node's memory-contention
//! stretch for the currently co-scheduled set — the effect the ensemble
//! test (Table 6) measures.

use sxsim::{JobDemand, Node};

/// A Resource Block: a named group of processors and memory jobs can be
/// confined to ("each Resource Block has a maximum and minimum processor
/// count, memory limits, and scheduling characteristics", §2.6.4).
#[derive(Debug, Clone)]
pub struct ResourceBlock {
    pub name: String,
    pub procs: usize,
    /// Memory available to the block's jobs, bytes. The benchmarked node
    /// had 8 GB of main memory (Table 2).
    pub memory_bytes: u64,
}

/// A batch job description.
#[derive(Debug, Clone)]
pub struct JobSpec {
    pub name: String,
    /// Processors the job occupies while running.
    pub procs: usize,
    /// Main memory the job's load module occupies while running, bytes
    /// (the SX is a real-memory machine — no demand paging, §2.2).
    pub memory_bytes: u64,
    /// Runtime if run alone on an idle node.
    pub solo_seconds: f64,
    /// Average memory demand per processor (bytes/cycle), for contention.
    pub bytes_per_cycle_per_proc: f64,
    /// Resource Block the job must run in (index into the block list).
    pub block: usize,
    /// Indices of jobs that must finish before this one starts.
    pub after: Vec<usize>,
}

/// Completed-schedule record for one job.
#[derive(Debug, Clone, Copy)]
pub struct JobRecord {
    pub start_s: f64,
    pub end_s: f64,
}

/// Result of a batch run.
#[derive(Debug, Clone)]
pub struct Schedule {
    pub records: Vec<JobRecord>,
    pub makespan_s: f64,
}

/// Why a job mix could not be scheduled. These used to be panics; they are
/// values so operators driving NQS from job files get a message, not an
/// abort.
#[derive(Debug, Clone, PartialEq)]
pub enum NqsError {
    /// The Resource Blocks together exceed the node's processors.
    BlocksOversubscribed { requested: usize, available: usize },
    /// A job names a block index that does not exist.
    UnknownBlock { job: String, block: usize, blocks: usize },
    /// A job wants more processors than its Resource Block has.
    JobTooWide { job: String, needs: usize, block: String, has: usize },
    /// A job's load module does not fit its block's memory (real-memory
    /// machine: no demand paging, the whole module must be resident).
    JobTooBig { job: String, needs: u64, block: String, has: u64 },
    /// Jobs remain but none can ever start (dependency cycle).
    Deadlock { waiting: Vec<String> },
    /// A checkpoint split was asked for a completed fraction outside
    /// `[0, 1]` (or NaN), which would manufacture negative restart work.
    BadFraction { job: String, fraction: f64 },
}

impl std::fmt::Display for NqsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NqsError::BlocksOversubscribed { requested, available } => {
                write!(f, "Resource Blocks claim {requested} processors; the node has {available}")
            }
            NqsError::UnknownBlock { job, block, blocks } => {
                write!(f, "job {job} names Resource Block {block}, but only {blocks} exist")
            }
            NqsError::JobTooWide { job, needs, block, has } => {
                write!(f, "job {job} needs {needs} procs but block {block} has {has}")
            }
            NqsError::JobTooBig { job, needs, block, has } => write!(
                f,
                "job {job} needs {needs} bytes resident but block {block} has {has} (no paging)"
            ),
            NqsError::Deadlock { waiting } => {
                write!(f, "NQS deadlock: jobs remain but none can run: {}", waiting.join(", "))
            }
            NqsError::BadFraction { job, fraction } => {
                write!(f, "checkpoint of job {job} at fraction {fraction} is outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for NqsError {}

/// Validate that `job` could ever run under `blocks`: the block exists and
/// the job fits its processor and (resident, unpaged) memory limits.
/// Shared by the batch scheduler below and the live [`crate::admission`]
/// gate the `sxd` daemon admits through.
pub(crate) fn validate_job(blocks: &[ResourceBlock], job: &JobSpec) -> Result<(), NqsError> {
    let Some(block) = blocks.get(job.block) else {
        return Err(NqsError::UnknownBlock {
            job: job.name.clone(),
            block: job.block,
            blocks: blocks.len(),
        });
    };
    if job.procs > block.procs {
        return Err(NqsError::JobTooWide {
            job: job.name.clone(),
            needs: job.procs,
            block: block.name.clone(),
            has: block.procs,
        });
    }
    if job.memory_bytes > block.memory_bytes {
        return Err(NqsError::JobTooBig {
            job: job.name.clone(),
            needs: job.memory_bytes,
            block: block.name.clone(),
            has: block.memory_bytes,
        });
    }
    Ok(())
}

/// The scheduler.
#[derive(Debug)]
pub struct Nqs<'a> {
    pub node: &'a Node,
    pub blocks: Vec<ResourceBlock>,
}

impl<'a> Nqs<'a> {
    /// One block spanning the whole node (the default configuration):
    /// all processors, the benchmarked 8 GB of memory.
    pub fn whole_node(node: &'a Node) -> Nqs<'a> {
        let procs = node.model().procs;
        Nqs {
            node,
            blocks: vec![ResourceBlock { name: "batch".into(), procs, memory_bytes: 8 << 30 }],
        }
    }

    /// Partitioned configuration. Errors if the blocks together claim more
    /// processors than the node has.
    pub fn with_blocks(node: &'a Node, blocks: Vec<ResourceBlock>) -> Result<Nqs<'a>, NqsError> {
        let total: usize = blocks.iter().map(|b| b.procs).sum();
        if total > node.model().procs {
            return Err(NqsError::BlocksOversubscribed {
                requested: total,
                available: node.model().procs,
            });
        }
        Ok(Nqs { node, blocks })
    }

    /// Run the job set to completion (FIFO within each block, dependency-
    /// aware) and return the schedule.
    pub fn run(&self, jobs: &[JobSpec]) -> Result<Schedule, NqsError> {
        let n = jobs.len();
        for j in jobs {
            validate_job(&self.blocks, j)?;
        }
        let mut remaining: Vec<f64> = jobs.iter().map(|j| j.solo_seconds).collect();
        let mut records = vec![JobRecord { start_s: f64::NAN, end_s: f64::NAN }; n];
        let mut done = vec![false; n];
        let mut running: Vec<usize> = Vec::new();
        let mut now = 0.0f64;

        loop {
            // Dispatch: FIFO over submission order, per-block processor
            // AND memory capacity (no demand paging: a job must fit whole).
            let mut free: Vec<usize> = self.blocks.iter().map(|b| b.procs).collect();
            let mut free_mem: Vec<u64> = self.blocks.iter().map(|b| b.memory_bytes).collect();
            for &r in &running {
                free[jobs[r].block] -= jobs[r].procs;
                free_mem[jobs[r].block] -= jobs[r].memory_bytes;
            }
            for (i, job) in jobs.iter().enumerate() {
                if done[i] || running.contains(&i) {
                    continue;
                }
                if !job.after.iter().all(|&d| done[d]) {
                    continue;
                }
                if job.procs <= free[job.block] && job.memory_bytes <= free_mem[job.block] {
                    free[job.block] -= job.procs;
                    free_mem[job.block] -= job.memory_bytes;
                    running.push(i);
                    if records[i].start_s.is_nan() {
                        records[i].start_s = now;
                    }
                }
            }
            if running.is_empty() {
                if done.iter().all(|&d| d) {
                    break;
                }
                // A dependency cycle would spin forever; surface it.
                return Err(NqsError::Deadlock {
                    waiting: jobs
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| !done[*i])
                        .map(|(_, j)| j.name.clone())
                        .collect(),
                });
            }

            // Current contention stretch for the co-scheduled set.
            let demands: Vec<JobDemand> = running
                .iter()
                .map(|&r| JobDemand {
                    solo_cycles: 0.0,
                    procs: jobs[r].procs,
                    bytes_per_cycle_per_proc: jobs[r].bytes_per_cycle_per_proc,
                })
                .collect();
            let stretch = self
                .node
                .coschedule_stretch(&demands)
                .expect("scheduler never oversubscribes the node");

            // Advance to the next completion.
            let (next_pos, dt) = running
                .iter()
                .enumerate()
                .map(|(pos, &r)| (pos, remaining[r] * stretch))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("running set is non-empty");
            now += dt;
            // Progress everyone by dt of wall time.
            for &r in &running {
                remaining[r] -= dt / stretch;
            }
            let finished = running.remove(next_pos);
            remaining[finished] = 0.0;
            done[finished] = true;
            records[finished].end_s = now;
        }

        Ok(Schedule { records, makespan_s: now })
    }
}

/// Split a job at a checkpoint: returns (completed-part spec with the
/// checkpoint write appended, restart spec for the remainder). Checkpoint
/// and restart both move `state_bytes` through the file system; the caller
/// adds those seconds (from [`crate::sfs::Sfs`]) to the halves.
///
/// `fraction_done` must lie in `[0, 1]` (both edges are legitimate: a job
/// checkpointed before its first cycle, or exactly at completion). Any
/// other value — including NaN — used to be an `assert!` abort and now
/// returns a typed [`NqsError::BadFraction`]: a fraction outside the range
/// would fabricate negative solo seconds for one of the halves, which the
/// scheduler would then happily "run" backwards in time.
pub fn checkpoint_split(
    job: &JobSpec,
    fraction_done: f64,
    ckpt_seconds: f64,
    restart_seconds: f64,
) -> Result<(JobSpec, JobSpec), NqsError> {
    if !(0.0..=1.0).contains(&fraction_done) {
        return Err(NqsError::BadFraction { job: job.name.clone(), fraction: fraction_done });
    }
    let mut first = job.clone();
    first.name = format!("{}-ckpt", job.name);
    first.solo_seconds = job.solo_seconds * fraction_done + ckpt_seconds;
    let mut rest = job.clone();
    rest.name = format!("{}-restart", job.name);
    rest.solo_seconds = job.solo_seconds * (1.0 - fraction_done) + restart_seconds;
    Ok((first, rest))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxsim::presets;

    fn node() -> Node {
        Node::new(presets::sx4_benchmarked())
    }

    fn job(name: &str, procs: usize, secs: f64) -> JobSpec {
        JobSpec {
            name: name.into(),
            procs,
            memory_bytes: 256 << 20,
            solo_seconds: secs,
            bytes_per_cycle_per_proc: 30.0,
            block: 0,
            after: vec![],
        }
    }

    #[test]
    fn independent_jobs_run_concurrently() {
        let n = node();
        let nqs = Nqs::whole_node(&n);
        let jobs = vec![job("a", 8, 100.0), job("b", 8, 100.0), job("c", 8, 100.0)];
        let s = nqs.run(&jobs).unwrap();
        // All fit at once: makespan ~ 100s (plus small contention).
        assert!(s.makespan_s < 110.0, "{}", s.makespan_s);
        for r in &s.records {
            assert_eq!(r.start_s, 0.0);
        }
    }

    #[test]
    fn oversubscription_queues_fifo() {
        let n = node();
        let nqs = Nqs::whole_node(&n);
        let jobs = vec![job("a", 24, 100.0), job("b", 24, 100.0)];
        let s = nqs.run(&jobs).unwrap();
        assert!(s.records[1].start_s >= s.records[0].end_s - 1e-9);
        assert!(s.makespan_s > 195.0);
    }

    #[test]
    fn dependencies_are_honoured() {
        let n = node();
        let nqs = Nqs::whole_node(&n);
        let mut b = job("b", 4, 50.0);
        b.after = vec![0];
        let jobs = vec![job("a", 4, 50.0), b];
        let s = nqs.run(&jobs).unwrap();
        assert!(s.records[1].start_s >= s.records[0].end_s - 1e-9);
    }

    #[test]
    fn resource_blocks_confine_jobs() {
        let n = node();
        let nqs = Nqs::with_blocks(
            &n,
            vec![
                ResourceBlock { name: "interactive".into(), procs: 8, memory_bytes: 4 << 30 },
                ResourceBlock { name: "batch".into(), procs: 24, memory_bytes: 4 << 30 },
            ],
        )
        .unwrap();
        let mut a = job("a", 8, 100.0);
        a.block = 0;
        let mut b = job("b", 8, 100.0);
        b.block = 0; // must wait for a despite free procs in the other block
        let mut c = job("c", 24, 100.0);
        c.block = 1;
        let s = nqs.run(&[a, b, c]).unwrap();
        assert!(s.records[1].start_s >= s.records[0].end_s - 1e-9);
        assert_eq!(s.records[2].start_s, 0.0);
    }

    #[test]
    fn contention_stretches_coscheduled_jobs() {
        let n = node();
        let nqs = Nqs::whole_node(&n);
        let solo = nqs.run(&[job("a", 4, 100.0)]).unwrap().makespan_s;
        let eight: Vec<JobSpec> = (0..8).map(|i| job(&format!("j{i}"), 4, 100.0)).collect();
        let packed = nqs.run(&eight).unwrap().makespan_s;
        assert!(packed > solo, "co-scheduled jobs must feel contention");
        assert!(packed < 1.1 * solo, "but only a few percent: {packed} vs {solo}");
    }

    #[test]
    fn checkpoint_split_preserves_total_work() {
        let j = job("long", 8, 1000.0);
        let (a, b) = checkpoint_split(&j, 0.4, 5.0, 3.0).unwrap();
        assert!((a.solo_seconds + b.solo_seconds - (1000.0 + 8.0)).abs() < 1e-9);
        assert!(a.name.contains("ckpt") && b.name.contains("restart"));
    }

    #[test]
    fn checkpoint_split_accepts_both_edges_exactly() {
        let j = job("edge", 8, 1000.0);
        // fraction 0: nothing done, the restart half carries all the work.
        let (a, b) = checkpoint_split(&j, 0.0, 5.0, 3.0).unwrap();
        assert_eq!(a.solo_seconds, 5.0);
        assert_eq!(b.solo_seconds, 1003.0);
        // fraction 1: everything done, the restart half is overhead only.
        let (a, b) = checkpoint_split(&j, 1.0, 5.0, 3.0).unwrap();
        assert_eq!(a.solo_seconds, 1005.0);
        assert_eq!(b.solo_seconds, 3.0);
        // No half may ever owe negative work.
        for f in [0.0, 0.5, 1.0] {
            let (a, b) = checkpoint_split(&j, f, 0.0, 0.0).unwrap();
            assert!(a.solo_seconds >= 0.0 && b.solo_seconds >= 0.0);
        }
    }

    #[test]
    fn checkpoint_split_rejects_out_of_range_fractions_typed() {
        let j = job("bad", 8, 1000.0);
        for f in [-0.1, 1.1, -f64::EPSILON, 1.0 + 1e-9, f64::NAN, f64::INFINITY, -1e9] {
            let err = checkpoint_split(&j, f, 5.0, 3.0).unwrap_err();
            assert!(
                matches!(err, NqsError::BadFraction { ref job, .. } if job == "bad"),
                "fraction {f} -> {err}"
            );
        }
    }

    #[test]
    fn blocks_cannot_exceed_node() {
        let n = node();
        let err = Nqs::with_blocks(
            &n,
            vec![
                ResourceBlock { name: "x".into(), procs: 20, memory_bytes: 4 << 30 },
                ResourceBlock { name: "y".into(), procs: 20, memory_bytes: 4 << 30 },
            ],
        )
        .unwrap_err();
        assert_eq!(err, NqsError::BlocksOversubscribed { requested: 40, available: 32 });
    }

    #[test]
    fn dependency_cycle_is_a_deadlock_error() {
        let n = node();
        let nqs = Nqs::whole_node(&n);
        let mut a = job("a", 4, 10.0);
        a.after = vec![1];
        let mut b = job("b", 4, 10.0);
        b.after = vec![0];
        let err = nqs.run(&[a, b]).unwrap_err();
        assert!(matches!(err, NqsError::Deadlock { ref waiting } if waiting.len() == 2), "{err}");
    }

    #[test]
    fn deterministic_schedule() {
        let n = node();
        let nqs = Nqs::whole_node(&n);
        let jobs: Vec<JobSpec> =
            (0..6).map(|i| job(&format!("j{i}"), 12, 50.0 + i as f64)).collect();
        let a = nqs.run(&jobs).unwrap();
        let b = nqs.run(&jobs).unwrap();
        assert_eq!(a.makespan_s, b.makespan_s);
    }
}
