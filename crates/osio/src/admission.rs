//! Live NQS admission control: the Resource-Block gate, reusable outside
//! the discrete-event scheduler.
//!
//! [`crate::nqs::Nqs`] replays a *fixed* job list to completion — fine for
//! reproducing Table 6, useless for a daemon whose jobs arrive one at a
//! time over sockets. [`Admission`] factors the admission decision out of
//! the DES: it tracks the currently co-scheduled set against the same
//! [`ResourceBlock`] processor/memory limits (real-memory machine, no
//! demand paging — a job must fit whole, §2.6.4), and prices the
//! memory-contention stretch the running mix imposes, so concurrent
//! clients of the `sxd` daemon experience the paper's co-scheduling
//! semantics without a simulated clock.
//!
//! Decisions mirror NQS queue behaviour:
//! - a job that can *never* fit its block is rejected with the same typed
//!   [`NqsError`] the batch scheduler raises;
//! - a feasible job either starts now ([`Admission::try_admit`] → `true`)
//!   or must wait for a release (`false`) — queueing policy (FIFO, who
//!   wakes first) belongs to the caller.

use crate::nqs::{validate_job, JobSpec, NqsError, ResourceBlock};
use sxsim::{JobDemand, MachineModel, Node};

/// A running-set entry: what admission charged for the job.
#[derive(Debug, Clone)]
struct Running {
    name: String,
    procs: usize,
    memory_bytes: u64,
    block: usize,
    bytes_per_cycle_per_proc: f64,
}

/// Stateful Resource-Block admission gate over one node.
#[derive(Debug)]
pub struct Admission {
    node: Node,
    blocks: Vec<ResourceBlock>,
    running: Vec<Running>,
    /// Callers currently parked waiting for a release (the NQS queue
    /// depth an operator would watch). Maintained by the daemon around
    /// its condvar waits via [`Admission::begin_wait`]/[`Admission::end_wait`].
    waiting: usize,
}

impl Admission {
    /// One block spanning the whole node: all processors, the benchmarked
    /// 8 GB of main memory (Table 2).
    pub fn whole_node(model: MachineModel) -> Admission {
        let procs = model.procs;
        Admission {
            node: Node::new(model),
            blocks: vec![ResourceBlock { name: "batch".into(), procs, memory_bytes: 8 << 30 }],
            running: Vec::new(),
            waiting: 0,
        }
    }

    /// Partitioned configuration; errors if the blocks oversubscribe the
    /// node's processors, like [`crate::nqs::Nqs::with_blocks`].
    pub fn with_blocks(
        model: MachineModel,
        blocks: Vec<ResourceBlock>,
    ) -> Result<Admission, NqsError> {
        let total: usize = blocks.iter().map(|b| b.procs).sum();
        if total > model.procs {
            return Err(NqsError::BlocksOversubscribed {
                requested: total,
                available: model.procs,
            });
        }
        Ok(Admission { node: Node::new(model), blocks, running: Vec::new(), waiting: 0 })
    }

    pub fn blocks(&self) -> &[ResourceBlock] {
        &self.blocks
    }

    /// Could this job *ever* be admitted? Typed rejection if not.
    pub fn feasible(&self, job: &JobSpec) -> Result<(), NqsError> {
        validate_job(&self.blocks, job)
    }

    /// Admit `job` if its block currently has the processors and memory;
    /// `Ok(false)` means feasible but must wait for a release. The
    /// dependency field (`after`) is ignored — arrival order is the
    /// caller's queue discipline.
    pub fn try_admit(&mut self, job: &JobSpec) -> Result<bool, NqsError> {
        self.feasible(job)?;
        let (free_procs, free_mem) = self.free(job.block);
        if job.procs > free_procs || job.memory_bytes > free_mem {
            return Ok(false);
        }
        self.running.push(Running {
            name: job.name.clone(),
            procs: job.procs,
            memory_bytes: job.memory_bytes,
            block: job.block,
            bytes_per_cycle_per_proc: job.bytes_per_cycle_per_proc,
        });
        Ok(true)
    }

    /// Release a previously admitted job by name. Returns `false` if no
    /// such job is running (already released, or never admitted).
    pub fn release(&mut self, name: &str) -> bool {
        match self.running.iter().position(|r| r.name == name) {
            Some(i) => {
                self.running.remove(i);
                true
            }
            None => false,
        }
    }

    /// Free (processors, memory) in block `block`; (0, 0) for an unknown
    /// block index.
    pub fn free(&self, block: usize) -> (usize, u64) {
        let Some(b) = self.blocks.get(block) else { return (0, 0) };
        let used_procs: usize =
            self.running.iter().filter(|r| r.block == block).map(|r| r.procs).sum();
        let used_mem: u64 =
            self.running.iter().filter(|r| r.block == block).map(|r| r.memory_bytes).sum();
        (b.procs - used_procs, b.memory_bytes - used_mem)
    }

    /// Number of currently co-scheduled jobs.
    pub fn running(&self) -> usize {
        self.running.len()
    }

    /// Mark one caller as parked waiting for a release.
    pub fn begin_wait(&mut self) {
        self.waiting += 1;
    }

    /// Mark one parked caller as woken (admitted, timed out or rejected).
    pub fn end_wait(&mut self) {
        self.waiting = self.waiting.saturating_sub(1);
    }

    /// Callers currently parked between `begin_wait` and `end_wait`.
    pub fn waiting(&self) -> usize {
        self.waiting
    }

    /// Memory-contention stretch factor (≥ 1) the current co-scheduled set
    /// experiences — the quantity the ensemble test (Table 6) measures. An
    /// idle node has stretch 1.
    pub fn stretch(&self) -> f64 {
        if self.running.is_empty() {
            return 1.0;
        }
        let demands: Vec<JobDemand> = self
            .running
            .iter()
            .map(|r| JobDemand {
                solo_cycles: 0.0,
                procs: r.procs,
                bytes_per_cycle_per_proc: r.bytes_per_cycle_per_proc,
            })
            .collect();
        // Admission never oversubscribes the node, so the only error path
        // (TooManyProcs) is unreachable; a daemon must not panic, so fall
        // back to the idle stretch instead of unwrapping.
        self.node.coschedule_stretch(&demands).unwrap_or(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxsim::presets;

    fn job(name: &str, procs: usize, mem: u64) -> JobSpec {
        JobSpec {
            name: name.into(),
            procs,
            memory_bytes: mem,
            solo_seconds: 100.0,
            bytes_per_cycle_per_proc: 30.0,
            block: 0,
            after: vec![],
        }
    }

    #[test]
    fn admit_until_full_then_wait_then_release() {
        let mut a = Admission::whole_node(presets::sx4_benchmarked());
        assert!(a.try_admit(&job("a", 24, 1 << 30)).unwrap());
        assert_eq!(a.free(0), (8, (8u64 << 30) - (1 << 30)));
        // 16 procs don't fit beside 24 on a 32-proc node.
        assert!(!a.try_admit(&job("b", 16, 1 << 30)).unwrap());
        assert!(a.try_admit(&job("c", 8, 1 << 30)).unwrap());
        assert_eq!(a.running(), 2);
        assert!(a.release("a"));
        assert!(!a.release("a"), "double release must be visible");
        assert!(a.try_admit(&job("b", 16, 1 << 30)).unwrap());
        assert_eq!(a.running(), 2);
    }

    #[test]
    fn memory_limits_gate_admission_without_paging() {
        let mut a = Admission::whole_node(presets::sx4_benchmarked());
        assert!(a.try_admit(&job("big", 4, 6 << 30)).unwrap());
        // 4 GB more don't fit in the remaining 2 GB, despite free procs.
        assert!(!a.try_admit(&job("big2", 4, 4 << 30)).unwrap());
        a.release("big");
        assert!(a.try_admit(&job("big2", 4, 4 << 30)).unwrap());
    }

    #[test]
    fn infeasible_jobs_get_the_typed_batch_errors() {
        let mut a = Admission::whole_node(presets::sx4_benchmarked());
        let err = a.try_admit(&job("wide", 40, 1 << 30)).unwrap_err();
        assert!(matches!(err, NqsError::JobTooWide { .. }), "{err}");
        let err = a.feasible(&job("huge", 4, 16 << 30)).unwrap_err();
        assert!(matches!(err, NqsError::JobTooBig { .. }), "{err}");
        let mut stray = job("stray", 4, 1 << 30);
        stray.block = 3;
        let err = a.feasible(&stray).unwrap_err();
        assert!(matches!(err, NqsError::UnknownBlock { .. }), "{err}");
    }

    #[test]
    fn blocks_confine_admission() {
        let mut a = Admission::with_blocks(
            presets::sx4_benchmarked(),
            vec![
                ResourceBlock { name: "interactive".into(), procs: 8, memory_bytes: 4 << 30 },
                ResourceBlock { name: "batch".into(), procs: 24, memory_bytes: 4 << 30 },
            ],
        )
        .unwrap();
        let mut x = job("x", 8, 1 << 30);
        x.block = 0;
        assert!(a.try_admit(&x).unwrap());
        // Block 0 is now full: a second 8-proc job waits even though block
        // 1 has 24 free processors.
        let mut y = job("y", 8, 1 << 30);
        y.block = 0;
        assert!(!a.try_admit(&y).unwrap());
        y.block = 1;
        assert!(a.try_admit(&y).unwrap());
    }

    #[test]
    fn oversubscribed_blocks_rejected_like_nqs() {
        let err = Admission::with_blocks(
            presets::sx4_benchmarked(),
            vec![
                ResourceBlock { name: "x".into(), procs: 20, memory_bytes: 4 << 30 },
                ResourceBlock { name: "y".into(), procs: 20, memory_bytes: 4 << 30 },
            ],
        )
        .unwrap_err();
        assert_eq!(err, NqsError::BlocksOversubscribed { requested: 40, available: 32 });
    }

    #[test]
    fn wait_queue_depth_tracks_begin_and_end() {
        let mut a = Admission::whole_node(presets::sx4_benchmarked());
        assert_eq!(a.waiting(), 0);
        a.begin_wait();
        a.begin_wait();
        assert_eq!(a.waiting(), 2);
        a.end_wait();
        assert_eq!(a.waiting(), 1);
        a.end_wait();
        a.end_wait(); // extra end_wait saturates instead of underflowing
        assert_eq!(a.waiting(), 0);
    }

    #[test]
    fn stretch_grows_with_coscheduled_load_and_resets() {
        let mut a = Admission::whole_node(presets::sx4_benchmarked());
        assert_eq!(a.stretch(), 1.0);
        a.try_admit(&job("one", 4, 1 << 30)).unwrap();
        let solo = a.stretch();
        for i in 0..7 {
            a.try_admit(&job(&format!("j{i}"), 4, 256 << 20)).unwrap();
        }
        let packed = a.stretch();
        assert!(packed > solo, "co-scheduling must stretch: {packed} vs {solo}");
        assert!(packed < 1.1 * solo, "but only by a few percent (Table 6)");
        for i in 0..7 {
            a.release(&format!("j{i}"));
        }
        a.release("one");
        assert_eq!(a.stretch(), 1.0);
    }
}
