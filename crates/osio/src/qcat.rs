//! `qcat` — "recently added commands include qcat which will copy the
//! stdout or stderr file from an executing batch script and present it to
//! the user" (paper §2.6.3).
//!
//! Jobs append to per-job stdout/stderr spool files as they run; `qcat`
//! snapshots a spool *while the job is still executing*, which is the
//! whole point of the command (watching a climate run's diagnostics
//! mid-flight without waiting for completion).

use std::collections::BTreeMap;

/// Which spool to read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stream {
    Stdout,
    Stderr,
}

/// Job output state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    Running,
    Finished,
}

#[derive(Debug, Default)]
struct Spool {
    stdout: String,
    stderr: String,
    state: Option<JobState>,
}

/// The spool directory the NQS daemons write and `qcat` reads.
#[derive(Debug, Default)]
pub struct SpoolDir {
    jobs: BTreeMap<String, Spool>,
}

/// Errors `qcat` can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QcatError {
    NoSuchJob(String),
}

impl SpoolDir {
    pub fn new() -> SpoolDir {
        SpoolDir::default()
    }

    /// A job starts: its spools are created empty.
    pub fn job_started(&mut self, job: &str) {
        let s = self.jobs.entry(job.to_string()).or_default();
        s.state = Some(JobState::Running);
    }

    /// The executing script writes a line.
    pub fn append(&mut self, job: &str, stream: Stream, line: &str) {
        let s = self.jobs.entry(job.to_string()).or_default();
        s.state.get_or_insert(JobState::Running);
        let buf = match stream {
            Stream::Stdout => &mut s.stdout,
            Stream::Stderr => &mut s.stderr,
        };
        buf.push_str(line);
        buf.push('\n');
    }

    /// The job completes; spools remain readable.
    pub fn job_finished(&mut self, job: &str) {
        if let Some(s) = self.jobs.get_mut(job) {
            s.state = Some(JobState::Finished);
        }
    }

    /// `qcat <job>`: snapshot the spool, running or not.
    pub fn qcat(&self, job: &str, stream: Stream) -> Result<(JobState, String), QcatError> {
        let s = self.jobs.get(job).ok_or_else(|| QcatError::NoSuchJob(job.to_string()))?;
        let state = s.state.unwrap_or(JobState::Running);
        let text = match stream {
            Stream::Stdout => s.stdout.clone(),
            Stream::Stderr => s.stderr.clone(),
        };
        Ok((state, text))
    }

    /// `qcat -t <job>`: only the last `lines` lines (tail mode).
    pub fn qcat_tail(&self, job: &str, stream: Stream, lines: usize) -> Result<String, QcatError> {
        let (_, text) = self.qcat(job, stream)?;
        let all: Vec<&str> = text.lines().collect();
        let start = all.len().saturating_sub(lines);
        Ok(all[start..].join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qcat_reads_an_executing_jobs_output() {
        let mut spool = SpoolDir::new();
        spool.job_started("ccm2-t42");
        spool.append("ccm2-t42", Stream::Stdout, " step 12  Tbar = 14.2");
        let (state, text) = spool.qcat("ccm2-t42", Stream::Stdout).unwrap();
        assert_eq!(state, JobState::Running, "qcat works mid-flight");
        assert!(text.contains("Tbar"));
    }

    #[test]
    fn stdout_and_stderr_are_separate() {
        let mut spool = SpoolDir::new();
        spool.append("j", Stream::Stdout, "progress");
        spool.append("j", Stream::Stderr, "warning: slow disk");
        assert!(spool.qcat("j", Stream::Stdout).unwrap().1.contains("progress"));
        assert!(!spool.qcat("j", Stream::Stdout).unwrap().1.contains("warning"));
        assert!(spool.qcat("j", Stream::Stderr).unwrap().1.contains("warning"));
    }

    #[test]
    fn finished_jobs_remain_readable() {
        let mut spool = SpoolDir::new();
        spool.append("done-job", Stream::Stdout, "bye");
        spool.job_finished("done-job");
        let (state, text) = spool.qcat("done-job", Stream::Stdout).unwrap();
        assert_eq!(state, JobState::Finished);
        assert_eq!(text, "bye\n");
    }

    #[test]
    fn missing_job_is_an_error() {
        let spool = SpoolDir::new();
        assert_eq!(spool.qcat("ghost", Stream::Stdout), Err(QcatError::NoSuchJob("ghost".into())));
    }

    #[test]
    fn tail_mode_returns_last_lines() {
        let mut spool = SpoolDir::new();
        for i in 0..100 {
            spool.append("chatty", Stream::Stdout, &format!("line {i}"));
        }
        let tail = spool.qcat_tail("chatty", Stream::Stdout, 3).unwrap();
        assert_eq!(tail, "line 97\nline 98\nline 99");
        // Asking for more lines than exist returns everything.
        let all = spool.qcat_tail("chatty", Stream::Stdout, 1000).unwrap();
        assert_eq!(all.lines().count(), 100);
    }
}
