//! PRODLOAD — the simulated production job load (paper §4.6).
//!
//! "We define a 'job' to be composed of the HIPPI Benchmark and three
//! copies of the CCM2 executing simultaneously. The CCM2 runs are a 3-day
//! simulation at resolution T106 and two 20-day simulations at T42
//! resolution." Test one runs one sequence of four such jobs; test two,
//! two concurrent sequences; test three, four; test four runs two CCM2
//! 2-day T170 jobs concurrently. The score is the wall clock for the whole
//! benchmark — the NEC SX-4/32 finished in 93 minutes 28 seconds.
//!
//! Job durations come from measured per-step timings of the `ccm-proxy`
//! model on the simulated machine; scheduling and co-scheduling contention
//! come from the NQS model.

use crate::iobench::hippi_test_seconds;
use crate::nqs::{JobSpec, Nqs};
use ccm_proxy::{Ccm2Config, Ccm2Proxy, Resolution};
use sxsim::{MachineModel, Node};

/// Measured per-step rates for the CCM2 configurations PRODLOAD uses.
#[derive(Debug, Clone, Copy)]
pub struct CcmRates {
    /// Seconds per step, T42 on 4 processors.
    pub t42_4p: f64,
    /// Seconds per step, T106 on 4 processors.
    pub t106_4p: f64,
    /// Seconds per step, T170 on 16 processors.
    pub t170_16p: f64,
    /// Memory demand per processor (bytes/cycle) of a CCM2 run.
    pub bpc: f64,
}

impl CcmRates {
    /// Measure the rates by running real model steps on `machine`.
    /// (Expensive: builds three models and steps each twice.)
    pub fn measure(machine: &MachineModel) -> CcmRates {
        let rate = |res: Resolution, procs: usize| {
            let mut m = Ccm2Proxy::new(Ccm2Config::benchmark(res), machine.clone());
            m.step(procs); // first step is a forward (spin-up) step
            let t = m.step(procs);
            (t.seconds, t.bytes_per_cycle_per_proc)
        };
        let (t42, bpc) = rate(Resolution::T42, 4);
        let (t106, _) = rate(Resolution::T106, 4);
        let (t170, _) = rate(Resolution::T170, 16);
        CcmRates { t42_4p: t42, t106_4p: t106, t170_16p: t170, bpc }
    }

    /// Representative fixed rates for fast tests (same orders of magnitude
    /// as [`CcmRates::measure`] on the benchmarked SX-4).
    pub fn synthetic() -> CcmRates {
        CcmRates { t42_4p: 0.11, t106_4p: 0.55, t170_16p: 0.70, bpc: 35.0 }
    }
}

/// Result of the full PRODLOAD benchmark.
#[derive(Debug, Clone)]
pub struct ProdloadResult {
    /// Wall seconds of tests 1..4 in order.
    pub test_seconds: [f64; 4],
    /// Total wall seconds (tests run back to back).
    pub total_seconds: f64,
}

impl ProdloadResult {
    /// Formatted as the paper reports it (minutes and seconds).
    pub fn formatted(&self) -> String {
        let total = self.total_seconds.round() as u64;
        format!("{} minutes {} seconds", total / 60, total % 60)
    }
}

/// Durations of the three CCM2 components of one PRODLOAD job.
fn job_components(rates: &CcmRates) -> [(&'static str, usize, f64); 3] {
    let t106_days = 3.0;
    let t42_days = 20.0;
    let t106 = t106_days * Resolution::T106.steps_per_day() as f64 * rates.t106_4p;
    let t42 = t42_days * Resolution::T42.steps_per_day() as f64 * rates.t42_4p;
    [("ccm2-T106-3day", 4, t106), ("ccm2-T42-20day-a", 4, t42), ("ccm2-T42-20day-b", 4, t42)]
}

/// Build the job list for `sequences` concurrent sequences of four jobs.
fn sequence_jobs(rates: &CcmRates, sequences: usize, hippi_s: f64) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for seq in 0..sequences {
        let mut prev_job: Vec<usize> = Vec::new();
        for step in 0..4 {
            let mut this_job = Vec::new();
            // The HIPPI component.
            jobs.push(JobSpec {
                name: format!("s{seq}-j{step}-hippi"),
                procs: 1,
                memory_bytes: 64 << 20,
                solo_seconds: hippi_s,
                bytes_per_cycle_per_proc: 2.0,
                block: 0,
                after: prev_job.clone(),
            });
            this_job.push(jobs.len() - 1);
            // The three CCM2 components.
            for (name, procs, secs) in job_components(rates) {
                jobs.push(JobSpec {
                    name: format!("s{seq}-j{step}-{name}"),
                    procs,
                    memory_bytes: 512 << 20,
                    solo_seconds: secs,
                    bytes_per_cycle_per_proc: rates.bpc,
                    block: 0,
                    after: prev_job.clone(),
                });
                this_job.push(jobs.len() - 1);
            }
            prev_job = this_job;
        }
    }
    jobs
}

/// Run the full PRODLOAD benchmark on `node`.
pub fn prodload(node: &Node, rates: &CcmRates) -> ProdloadResult {
    let hippi_s = hippi_test_seconds();
    let nqs = Nqs::whole_node(node);

    let mut test_seconds = [0.0f64; 4];
    for (i, sequences) in [1usize, 2, 4].into_iter().enumerate() {
        let jobs = sequence_jobs(rates, sequences, hippi_s);
        test_seconds[i] = nqs.run(&jobs).expect("PRODLOAD mix fits the node").makespan_s;
    }
    // Test four: two concurrent 2-day T170 runs.
    let t170_secs = 2.0 * Resolution::T170.steps_per_day() as f64 * rates.t170_16p;
    let t170 = |name: &str| JobSpec {
        name: name.into(),
        procs: 16,
        memory_bytes: 2 << 30,
        solo_seconds: t170_secs,
        bytes_per_cycle_per_proc: rates.bpc,
        block: 0,
        after: vec![],
    };
    test_seconds[3] =
        nqs.run(&[t170("t170-a"), t170("t170-b")]).expect("PRODLOAD mix fits the node").makespan_s;

    ProdloadResult { test_seconds, total_seconds: test_seconds.iter().sum() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxsim::presets;

    fn node() -> Node {
        Node::new(presets::sx4_benchmarked())
    }

    #[test]
    fn four_tests_all_positive_and_ordered() {
        let r = prodload(&node(), &CcmRates::synthetic());
        for (i, &t) in r.test_seconds.iter().enumerate() {
            assert!(t > 0.0, "test {} empty", i + 1);
        }
        // More concurrent sequences on a fixed node cannot be faster than
        // fewer (same per-sequence work, shared processors).
        assert!(r.test_seconds[1] >= r.test_seconds[0] * 0.99);
        assert!(r.test_seconds[2] > r.test_seconds[1]);
    }

    #[test]
    fn two_sequences_overlap_well() {
        // 8 processors per job set: two sequences (2 x 13 procs) fit in the
        // 32-processor node, so test 2 should cost far less than 2x test 1.
        let r = prodload(&node(), &CcmRates::synthetic());
        assert!(
            r.test_seconds[1] < 1.5 * r.test_seconds[0],
            "test2 {} vs test1 {}",
            r.test_seconds[1],
            r.test_seconds[0]
        );
    }

    #[test]
    fn total_in_the_paper_ballpark() {
        // The paper's SX-4/32 finished in 93m28s = 5608 s. The proxy model
        // should land within a factor of ~2.5.
        let r = prodload(&node(), &CcmRates::synthetic());
        assert!(
            (2000.0..14000.0).contains(&r.total_seconds),
            "PRODLOAD total {} s vs paper 5608 s",
            r.total_seconds
        );
    }

    #[test]
    fn formatted_output_shape() {
        let r = ProdloadResult { test_seconds: [0.0; 4], total_seconds: 5608.0 };
        assert_eq!(r.formatted(), "93 minutes 28 seconds");
    }

    #[test]
    fn job_graph_has_right_shape() {
        let jobs = sequence_jobs(&CcmRates::synthetic(), 2, 100.0);
        // 2 sequences x 4 jobs x 4 components.
        assert_eq!(jobs.len(), 32);
        // First job of each sequence has no dependencies.
        assert!(jobs[0].after.is_empty());
        assert!(jobs[16].after.is_empty());
        // Later jobs depend on all four components of the previous job.
        assert_eq!(jobs[4].after.len(), 4);
    }
}
