//! SFS — the SUPER-UX native file system (paper §2.6.5) — with its
//! XMU-backed cache: "a flexible file system level caching scheme
//! utilizing XMU space; numerous parameters can be set including write
//! back method, staging unit, and allocation cluster size. Individual
//! files can exceed 2 terabytes."
//!
//! Writes land in the XMU at 16 GB/s and drain to the disk array
//! asynchronously; a write only stalls the application when the staging
//! space is full. Reads hit the XMU cache or go to disk.

use crate::chan::DiskArray;
use sxsim::Xmu;

/// Write-back policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteBack {
    /// Stage in XMU, drain in the background (the fast default).
    Async,
    /// Write through to disk (checkpoint safety).
    Sync,
}

/// An SFS instance: XMU staging in front of a disk array.
#[derive(Debug)]
pub struct Sfs {
    pub xmu: Xmu,
    pub disks: DiskArray,
    pub writeback: WriteBack,
    /// Simulated time at which the background drain finishes.
    drain_done_s: f64,
    /// Bytes currently staged and not yet drained.
    staged_bytes: u64,
    /// Total bytes written since creation.
    pub total_written: u64,
}

/// Result of one file operation.
#[derive(Debug, Clone, Copy)]
pub struct IoOutcome {
    /// Seconds the *application* was blocked.
    pub blocked_s: f64,
    /// Seconds until the data is durable on disk.
    pub durable_s: f64,
}

impl Sfs {
    /// The benchmarked configuration: 4 GB XMU, 282 GB disk.
    pub fn benchmarked() -> Sfs {
        Sfs {
            xmu: Xmu::benchmarked(),
            disks: DiskArray::benchmarked(),
            writeback: WriteBack::Async,
            drain_done_s: 0.0,
            staged_bytes: 0,
            total_written: 0,
        }
    }

    /// Write `bytes` in `records` direct-access records starting at
    /// simulated time `now_s`. Returns how long the application blocks and
    /// when the data is durable.
    pub fn write(&mut self, now_s: f64, bytes: u64, records: usize) -> IoOutcome {
        self.total_written += bytes;
        let disk_s = self.disks.write_seconds(bytes, records);
        match self.writeback {
            WriteBack::Sync => {
                let xmu_s = self.xmu.transfer_seconds(bytes);
                let t = xmu_s + disk_s;
                self.drain_done_s = now_s + t;
                IoOutcome { blocked_s: t, durable_s: t }
            }
            WriteBack::Async => {
                // Catch up the background drain.
                if now_s >= self.drain_done_s {
                    self.staged_bytes = 0;
                }
                let mut blocked = self.xmu.transfer_seconds(bytes);
                // If staging would overflow the XMU, the application waits
                // for enough drain to make room.
                if self.staged_bytes + bytes > self.xmu.capacity_bytes {
                    let overflow = self.staged_bytes + bytes - self.xmu.capacity_bytes;
                    let frac = overflow as f64 / self.staged_bytes.max(1) as f64;
                    let wait = (self.drain_done_s - now_s).max(0.0) * frac.min(1.0);
                    blocked += wait;
                    self.staged_bytes = self.staged_bytes.saturating_sub(overflow);
                }
                self.staged_bytes += bytes;
                let drain_start = self.drain_done_s.max(now_s + blocked);
                self.drain_done_s = drain_start + disk_s;
                IoOutcome { blocked_s: blocked, durable_s: self.drain_done_s - now_s }
            }
        }
    }

    /// Read `bytes`; `cached` says whether it is still staged in the XMU.
    pub fn read(&mut self, bytes: u64, records: usize, cached: bool) -> f64 {
        if cached {
            self.xmu.transfer_seconds(bytes)
        } else {
            self.disks.write_seconds(bytes, records) // symmetric disk path
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn async_write_blocks_only_for_xmu() {
        let mut fs = Sfs::benchmarked();
        let out = fs.write(0.0, 1 << 30, 64);
        // 1 GB at 16 GB/s ~ 62 ms blocked; durable only after disk drain.
        assert!(out.blocked_s < 0.1, "blocked {}", out.blocked_s);
        assert!(out.durable_s > 2.0, "durable {}", out.durable_s);
    }

    #[test]
    fn sync_write_blocks_for_disk() {
        let mut fs = Sfs::benchmarked();
        fs.writeback = WriteBack::Sync;
        let out = fs.write(0.0, 1 << 30, 64);
        assert!(out.blocked_s > 2.0);
        assert!((out.blocked_s - out.durable_s).abs() < 1e-12);
    }

    #[test]
    fn staging_overflow_stalls() {
        let mut fs = Sfs::benchmarked();
        // Two back-to-back 3 GB writes overflow the 4 GB XMU.
        let a = fs.write(0.0, 3 << 30, 16);
        let b = fs.write(a.blocked_s, 3 << 30, 16);
        assert!(b.blocked_s > 5.0 * a.blocked_s, "{} vs {}", a.blocked_s, b.blocked_s);
    }

    #[test]
    fn drain_catches_up_when_idle() {
        let mut fs = Sfs::benchmarked();
        let a = fs.write(0.0, 3 << 30, 16);
        // Come back long after the drain finished: no stall.
        let later = a.durable_s + 100.0;
        let b = fs.write(later, 3 << 30, 16);
        assert!((b.blocked_s - a.blocked_s).abs() < 0.05);
    }

    #[test]
    fn cached_read_is_xmu_fast() {
        let mut fs = Sfs::benchmarked();
        let hot = fs.read(1 << 30, 64, true);
        let cold = fs.read(1 << 30, 64, false);
        assert!(cold > 10.0 * hot);
    }

    #[test]
    fn accounting_tracks_total() {
        let mut fs = Sfs::benchmarked();
        fs.write(0.0, 100, 1);
        fs.write(1.0, 200, 1);
        assert_eq!(fs.total_written, 300);
    }
}
