//! SXBackStore — file archiving management (paper §2.6.5 item 5).
//!
//! NCAR's production environment drains model history to the HIPPI-based
//! Mass Storage System. SXBackStore watches the file system, migrates
//! cold files over HIPPI, and recalls them on access. The model here is a
//! policy engine over simulated time: files age, cross a migration
//! threshold, move at HIPPI rates, and recalls stall the reader for the
//! transfer — enough to price archiving pressure in the I/O benchmarks.

use crate::chan::Channel;

/// Where a file's payload currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// On SFS disk, immediately readable.
    Online,
    /// Migrated to mass storage; only a stub remains.
    Archived,
}

/// One managed file.
#[derive(Debug, Clone)]
pub struct ManagedFile {
    pub name: String,
    pub bytes: u64,
    pub placement: Placement,
    /// Last access in simulated seconds.
    pub last_access_s: f64,
}

/// The archiver.
#[derive(Debug)]
pub struct BackStore {
    pub hippi: Channel,
    /// Files idle longer than this migrate (seconds).
    pub migrate_after_s: f64,
    /// Online capacity the policy tries to respect (bytes).
    pub online_capacity: u64,
    files: Vec<ManagedFile>,
}

/// Outcome of a recall.
#[derive(Debug, Clone, Copy)]
pub struct Recall {
    /// Seconds the reader stalls waiting for the tape/HIPPI path.
    pub stall_s: f64,
}

impl BackStore {
    pub fn new(online_capacity: u64, migrate_after_s: f64) -> BackStore {
        BackStore { hippi: Channel::hippi(), migrate_after_s, online_capacity, files: Vec::new() }
    }

    /// Register a freshly written file.
    pub fn track(&mut self, name: impl Into<String>, bytes: u64, now_s: f64) {
        self.files.push(ManagedFile {
            name: name.into(),
            bytes,
            placement: Placement::Online,
            last_access_s: now_s,
        });
    }

    pub fn online_bytes(&self) -> u64 {
        self.files.iter().filter(|f| f.placement == Placement::Online).map(|f| f.bytes).sum()
    }

    pub fn file(&self, name: &str) -> Option<&ManagedFile> {
        self.files.iter().find(|f| f.name == name)
    }

    /// Run one policy sweep at simulated time `now_s`: migrate files idle
    /// past the threshold, oldest first, and keep migrating while the
    /// online set exceeds capacity. Returns (files migrated, HIPPI seconds
    /// consumed in the background).
    pub fn sweep(&mut self, now_s: f64) -> (usize, f64) {
        let mut order: Vec<usize> = (0..self.files.len())
            .filter(|&i| self.files[i].placement == Placement::Online)
            .collect();
        order.sort_by(|&a, &b| self.files[a].last_access_s.total_cmp(&self.files[b].last_access_s));

        let mut migrated = 0;
        let mut hippi_s = 0.0;
        for i in order {
            let idle = now_s - self.files[i].last_access_s;
            let over_capacity = self.online_bytes() > self.online_capacity;
            if idle > self.migrate_after_s || over_capacity {
                hippi_s += self.hippi.transfer_seconds(self.files[i].bytes);
                self.files[i].placement = Placement::Archived;
                migrated += 1;
            }
        }
        (migrated, hippi_s)
    }

    /// Access a file at `now_s`: online access is free; an archived file
    /// recalls over HIPPI and the caller stalls.
    pub fn access(&mut self, name: &str, now_s: f64) -> Option<Recall> {
        let f = self.files.iter_mut().find(|f| f.name == name)?;
        f.last_access_s = now_s;
        match f.placement {
            Placement::Online => Some(Recall { stall_s: 0.0 }),
            Placement::Archived => {
                f.placement = Placement::Online;
                Some(Recall { stall_s: self.hippi.transfer_seconds(f.bytes) })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> BackStore {
        BackStore::new(10 << 30, 3600.0)
    }

    #[test]
    fn idle_files_migrate() {
        let mut b = store();
        b.track("history-001", 1 << 30, 0.0);
        b.track("history-002", 1 << 30, 5000.0);
        let (n, hippi_s) = b.sweep(6000.0);
        assert_eq!(n, 1, "only the idle file migrates");
        assert!(hippi_s > 5.0, "1 GB over HIPPI takes seconds: {hippi_s}");
        assert_eq!(b.file("history-001").unwrap().placement, Placement::Archived);
        assert_eq!(b.file("history-002").unwrap().placement, Placement::Online);
    }

    #[test]
    fn capacity_pressure_forces_migration() {
        let mut b = BackStore::new(2 << 30, 1e12); // age threshold never trips
        for i in 0..4 {
            b.track(format!("f{i}"), 1 << 30, i as f64);
        }
        let (n, _) = b.sweep(10.0);
        assert!(n >= 2, "must shed to capacity, migrated {n}");
        assert!(b.online_bytes() <= 2 << 30);
        // Oldest files went first.
        assert_eq!(b.file("f0").unwrap().placement, Placement::Archived);
        assert_eq!(b.file("f3").unwrap().placement, Placement::Online);
    }

    #[test]
    fn recall_stalls_then_is_online() {
        let mut b = store();
        b.track("old", 512 << 20, 0.0);
        b.sweep(7200.0);
        assert_eq!(b.file("old").unwrap().placement, Placement::Archived);
        let r = b.access("old", 7300.0).unwrap();
        assert!(r.stall_s > 2.0);
        // Second access is free.
        let r2 = b.access("old", 7400.0).unwrap();
        assert_eq!(r2.stall_s, 0.0);
    }

    #[test]
    fn access_refreshes_age() {
        let mut b = store();
        b.track("hot", 1 << 30, 0.0);
        b.access("hot", 3500.0);
        let (n, _) = b.sweep(4000.0); // idle only 500 s now
        assert_eq!(n, 0);
    }

    #[test]
    fn unknown_file_is_none() {
        let mut b = store();
        assert!(b.access("nope", 0.0).is_none());
    }
}
