//! NQS queues and queue complexes (paper §2.6.3): "NQS queues, queue
//! complexes, and the full range of individual queue parameters ... are
//! supported."
//!
//! On top of the core dispatcher ([`crate::nqs`]) this adds the queue
//! layer: named queues with priorities, per-queue concurrent-run limits
//! and processor ceilings, grouped into complexes that cap their members'
//! aggregate running jobs — the knobs NCAR operations used to shape the
//! production mix.

use crate::nqs::{JobSpec, Nqs, Schedule};

/// One NQS queue.
#[derive(Debug, Clone)]
pub struct Queue {
    pub name: String,
    /// Higher dispatches first.
    pub priority: i32,
    /// Maximum jobs from this queue running at once.
    pub run_limit: usize,
    /// Maximum processors a single job may request here.
    pub max_procs_per_job: usize,
}

/// A queue complex: a cap on the aggregate running jobs of its members.
#[derive(Debug, Clone)]
pub struct QueueComplex {
    pub name: String,
    /// Member queue names.
    pub members: Vec<String>,
    /// Aggregate run limit across the members.
    pub run_limit: usize,
}

/// A job as submitted to a queue.
#[derive(Debug, Clone)]
pub struct QueuedJob {
    pub queue: String,
    pub spec: JobSpec,
}

/// Submission errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    NoSuchQueue(String),
    TooManyProcs { queue: String, requested: usize, limit: usize },
}

/// The queue manager: validates submissions and linearizes the mix into
/// dependency-shaped [`JobSpec`]s the dispatcher understands (priority
/// order between queues, FIFO within a queue, run limits as synthetic
/// dependencies).
#[derive(Debug)]
pub struct QueueManager {
    pub queues: Vec<Queue>,
    pub complexes: Vec<QueueComplex>,
    accepted: Vec<QueuedJob>,
}

impl QueueManager {
    pub fn new(queues: Vec<Queue>, complexes: Vec<QueueComplex>) -> QueueManager {
        for c in &complexes {
            for m in &c.members {
                assert!(
                    queues.iter().any(|q| &q.name == m),
                    "complex {} names missing queue {m}",
                    c.name
                );
            }
        }
        QueueManager { queues, complexes, accepted: Vec::new() }
    }

    /// NCAR-flavoured default: express > premium > regular > standby.
    pub fn site_default() -> QueueManager {
        let queues = vec![
            Queue { name: "express".into(), priority: 40, run_limit: 1, max_procs_per_job: 4 },
            Queue { name: "premium".into(), priority: 30, run_limit: 2, max_procs_per_job: 16 },
            Queue { name: "regular".into(), priority: 20, run_limit: 4, max_procs_per_job: 32 },
            Queue { name: "standby".into(), priority: 10, run_limit: 2, max_procs_per_job: 32 },
        ];
        let complexes = vec![QueueComplex {
            name: "batch".into(),
            members: vec!["premium".into(), "regular".into(), "standby".into()],
            run_limit: 5,
        }];
        QueueManager::new(queues, complexes)
    }

    fn queue(&self, name: &str) -> Option<&Queue> {
        self.queues.iter().find(|q| q.name == name)
    }

    /// qsub: validate and accept a job.
    pub fn submit(&mut self, queue: &str, spec: JobSpec) -> Result<(), SubmitError> {
        let q = self.queue(queue).ok_or_else(|| SubmitError::NoSuchQueue(queue.to_string()))?;
        if spec.procs > q.max_procs_per_job {
            return Err(SubmitError::TooManyProcs {
                queue: queue.to_string(),
                requested: spec.procs,
                limit: q.max_procs_per_job,
            });
        }
        self.accepted.push(QueuedJob { queue: queue.to_string(), spec });
        Ok(())
    }

    /// Linearize the accepted mix into dispatcher jobs:
    /// - between queues: higher priority first;
    /// - within a queue: submission (FIFO) order;
    /// - run limits (queue and complex): job k depends on job k - limit of
    ///   the same scope, the classic token trick.
    pub fn build_jobs(&self) -> Vec<JobSpec> {
        let mut order: Vec<usize> = (0..self.accepted.len()).collect();
        order.sort_by_key(|&i| {
            let prio = self.queue(&self.accepted[i].queue).map(|q| q.priority).unwrap_or(0);
            (-prio, i)
        });

        let mut jobs: Vec<JobSpec> = Vec::with_capacity(order.len());
        // Scope name -> indices (into `jobs`) already emitted in that scope.
        let mut per_queue: std::collections::BTreeMap<String, Vec<usize>> = Default::default();
        let mut per_complex: std::collections::BTreeMap<String, Vec<usize>> = Default::default();

        for &i in &order {
            let qj = &self.accepted[i];
            let mut spec = qj.spec.clone();
            let slot = jobs.len();

            let q = self.queue(&qj.queue).expect("validated at submit");
            let emitted = per_queue.entry(qj.queue.clone()).or_default();
            if emitted.len() >= q.run_limit {
                spec.after.push(emitted[emitted.len() - q.run_limit]);
            }
            emitted.push(slot);

            for c in &self.complexes {
                if c.members.contains(&qj.queue) {
                    let emitted = per_complex.entry(c.name.clone()).or_default();
                    if emitted.len() >= c.run_limit {
                        spec.after.push(emitted[emitted.len() - c.run_limit]);
                    }
                    emitted.push(slot);
                }
            }
            jobs.push(spec);
        }
        jobs
    }

    /// Run the accepted mix through the dispatcher.
    pub fn run(&self, nqs: &Nqs) -> Result<(Vec<JobSpec>, Schedule), crate::nqs::NqsError> {
        let jobs = self.build_jobs();
        let schedule = nqs.run(&jobs)?;
        Ok((jobs, schedule))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxsim::{presets, Node};

    fn spec(name: &str, procs: usize, secs: f64) -> JobSpec {
        JobSpec {
            name: name.into(),
            procs,
            memory_bytes: 256 << 20,
            solo_seconds: secs,
            bytes_per_cycle_per_proc: 20.0,
            block: 0,
            after: vec![],
        }
    }

    #[test]
    fn submission_validates_queue_and_procs() {
        let mut qm = QueueManager::site_default();
        assert_eq!(
            qm.submit("nonesuch", spec("a", 1, 1.0)),
            Err(SubmitError::NoSuchQueue("nonesuch".into()))
        );
        assert!(matches!(
            qm.submit("express", spec("big", 16, 1.0)),
            Err(SubmitError::TooManyProcs { .. })
        ));
        assert!(qm.submit("express", spec("small", 2, 1.0)).is_ok());
    }

    #[test]
    fn priority_orders_queues() {
        let mut qm = QueueManager::site_default();
        qm.submit("standby", spec("low", 2, 10.0)).unwrap();
        qm.submit("express", spec("hot", 2, 10.0)).unwrap();
        let jobs = qm.build_jobs();
        assert_eq!(jobs[0].name, "hot", "express dispatches first");
        assert_eq!(jobs[1].name, "low");
    }

    #[test]
    fn run_limit_serializes_within_a_queue() {
        let mut qm = QueueManager::site_default();
        for i in 0..3 {
            qm.submit("express", spec(&format!("e{i}"), 2, 60.0)).unwrap(); // run_limit 1
        }
        let node = Node::new(presets::sx4_benchmarked());
        let nqs = Nqs::whole_node(&node);
        let (_jobs, s) = qm.run(&nqs).unwrap();
        // With run_limit 1, the three 60 s jobs run strictly one after
        // another despite ample free processors.
        assert!(s.makespan_s >= 179.0, "{}", s.makespan_s);
    }

    #[test]
    fn complex_caps_aggregate_running_jobs() {
        let queues = vec![
            Queue { name: "a".into(), priority: 1, run_limit: 10, max_procs_per_job: 4 },
            Queue { name: "b".into(), priority: 1, run_limit: 10, max_procs_per_job: 4 },
        ];
        let complexes = vec![QueueComplex {
            name: "cap".into(),
            members: vec!["a".into(), "b".into()],
            run_limit: 2,
        }];
        let mut qm = QueueManager::new(queues, complexes);
        for i in 0..4 {
            let q = if i % 2 == 0 { "a" } else { "b" };
            qm.submit(q, spec(&format!("j{i}"), 2, 100.0)).unwrap();
        }
        let node = Node::new(presets::sx4_benchmarked());
        let nqs = Nqs::whole_node(&node);
        let (_jobs, s) = qm.run(&nqs).unwrap();
        // 4 jobs, at most 2 at a time => two waves of ~100 s.
        assert!(s.makespan_s >= 199.0 && s.makespan_s < 230.0, "{}", s.makespan_s);
    }

    #[test]
    fn unconstrained_jobs_still_run_concurrently() {
        let mut qm = QueueManager::site_default();
        qm.submit("regular", spec("r0", 8, 50.0)).unwrap();
        qm.submit("regular", spec("r1", 8, 50.0)).unwrap();
        let node = Node::new(presets::sx4_benchmarked());
        let nqs = Nqs::whole_node(&node);
        let (_jobs, s) = qm.run(&nqs).unwrap();
        assert!(s.makespan_s < 60.0, "{}", s.makespan_s);
    }

    #[test]
    #[should_panic(expected = "missing queue")]
    fn complex_must_name_real_queues() {
        QueueManager::new(
            vec![],
            vec![QueueComplex { name: "c".into(), members: vec!["ghost".into()], run_limit: 1 }],
        );
    }
}
