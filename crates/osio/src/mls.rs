//! Multilevel Security (paper §2.6.6): "security levels are site definable
//! as to both names and relationships" — a Bell-LaPadula-style lattice
//! with site-defined levels and compartments, enforcing no-read-up /
//! no-write-down on file accesses and gating which NQS jobs a user may
//! inspect.

use std::collections::BTreeSet;

/// A site-defined sensitivity label: hierarchical level + compartments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Label {
    /// Position in the site's level ordering (higher = more sensitive).
    pub level: u8,
    /// Need-to-know compartments.
    pub compartments: BTreeSet<String>,
}

impl Label {
    pub fn new(level: u8, compartments: &[&str]) -> Label {
        Label { level, compartments: compartments.iter().map(|s| s.to_string()).collect() }
    }

    /// Dominance: self >= other in the lattice (level at least as high and
    /// a superset of compartments).
    pub fn dominates(&self, other: &Label) -> bool {
        self.level >= other.level && other.compartments.is_subset(&self.compartments)
    }
}

/// The site policy: named levels in ascending sensitivity.
#[derive(Debug, Clone)]
pub struct Policy {
    pub level_names: Vec<String>,
}

impl Policy {
    /// A typical site: public < internal < restricted < classified.
    pub fn site_default() -> Policy {
        Policy {
            level_names: ["public", "internal", "restricted", "classified"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        }
    }

    pub fn level(&self, name: &str) -> Option<u8> {
        self.level_names.iter().position(|n| n == name).map(|i| i as u8)
    }

    /// Label helper from a level name.
    pub fn label(&self, name: &str, compartments: &[&str]) -> Option<Label> {
        Some(Label::new(self.level(name)?, compartments))
    }
}

/// Access decisions under Bell-LaPadula.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    Grant,
    Deny,
}

/// Simple security property: a subject may read an object only if the
/// subject's label dominates the object's (no read up).
pub fn check_read(subject: &Label, object: &Label) -> Decision {
    if subject.dominates(object) {
        Decision::Grant
    } else {
        Decision::Deny
    }
}

/// *-property: a subject may write an object only if the object's label
/// dominates the subject's (no write down).
pub fn check_write(subject: &Label, object: &Label) -> Decision {
    if object.dominates(subject) {
        Decision::Grant
    } else {
        Decision::Deny
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> Policy {
        Policy::site_default()
    }

    #[test]
    fn dominance_is_a_partial_order() {
        let p = policy();
        let public = p.label("public", &[]).unwrap();
        let classified = p.label("classified", &[]).unwrap();
        let climate = p.label("internal", &["climate"]).unwrap();
        let ocean = p.label("internal", &["ocean"]).unwrap();

        assert!(classified.dominates(&public));
        assert!(!public.dominates(&classified));
        // Incomparable compartments: neither dominates.
        assert!(!climate.dominates(&ocean));
        assert!(!ocean.dominates(&climate));
        // Reflexive.
        assert!(climate.dominates(&climate));
    }

    #[test]
    fn no_read_up() {
        let p = policy();
        let analyst = p.label("internal", &["climate"]).unwrap();
        let public_file = p.label("public", &[]).unwrap();
        let secret_file = p.label("classified", &["climate"]).unwrap();
        assert_eq!(check_read(&analyst, &public_file), Decision::Grant);
        assert_eq!(check_read(&analyst, &secret_file), Decision::Deny);
    }

    #[test]
    fn no_write_down() {
        let p = policy();
        let analyst = p.label("restricted", &[]).unwrap();
        let public_file = p.label("public", &[]).unwrap();
        let higher_file = p.label("classified", &[]).unwrap();
        assert_eq!(check_write(&analyst, &public_file), Decision::Deny);
        assert_eq!(check_write(&analyst, &higher_file), Decision::Grant);
    }

    #[test]
    fn compartments_enforce_need_to_know() {
        let p = policy();
        let climate_analyst = p.label("classified", &["climate"]).unwrap();
        let ocean_file = p.label("internal", &["ocean"]).unwrap();
        // High level alone is not enough without the compartment.
        assert_eq!(check_read(&climate_analyst, &ocean_file), Decision::Deny);
        let cleared = p.label("classified", &["climate", "ocean"]).unwrap();
        assert_eq!(check_read(&cleared, &ocean_file), Decision::Grant);
    }

    #[test]
    fn site_defines_its_own_names() {
        let custom = Policy {
            level_names: ["green", "amber", "red"].iter().map(|s| s.to_string()).collect(),
        };
        assert_eq!(custom.level("amber"), Some(1));
        assert_eq!(custom.level("chartreuse"), None);
        let a = custom.label("red", &[]).unwrap();
        let b = custom.label("green", &[]).unwrap();
        assert!(a.dominates(&b));
    }
}
