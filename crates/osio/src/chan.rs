//! I/O channel models: the IOP's disk strings, HIPPI channels, and the
//! FDDI/IP external network (paper §2.4, §4.5).
//!
//! Each SX-4 IOP sustains 1.6 GB/s and fans out to HIPPI (the Mass Storage
//! System path) and fast-wide SCSI-2 disk strings. Channels are modelled
//! with a fixed per-operation latency plus byte-rate service; concurrent
//! transfers on one channel share its bandwidth fairly.

/// A byte channel with setup latency and finite bandwidth.
#[derive(Debug, Clone)]
pub struct Channel {
    pub name: &'static str,
    /// Sustained bandwidth, bytes/second.
    pub bytes_per_s: f64,
    /// Per-transfer setup latency, seconds.
    pub latency_s: f64,
}

impl Channel {
    /// SX-4 IOP aggregate: 1.6 GB/s.
    pub fn iop() -> Channel {
        Channel { name: "IOP", bytes_per_s: 1.6e9, latency_s: 20e-6 }
    }

    /// One HIPPI channel: 800 Mbit/s line rate, ~92 MB/s usable after
    /// framing overhead.
    pub fn hippi() -> Channel {
        Channel { name: "HIPPI", bytes_per_s: 92e6, latency_s: 250e-6 }
    }

    /// A fast-wide SCSI-2 disk string: ~14 MB/s sustained, seek-dominated
    /// latency.
    pub fn scsi_disk() -> Channel {
        Channel { name: "SCSI-2 disk", bytes_per_s: 14e6, latency_s: 9e-3 }
    }

    /// The FDDI external network interface: 100 Mbit/s line rate, ~9 MB/s
    /// of IP throughput after protocol overhead.
    pub fn fddi() -> Channel {
        Channel { name: "FDDI/IP", bytes_per_s: 9e6, latency_s: 1.2e-3 }
    }

    /// Seconds to move `bytes` as one transfer.
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / self.bytes_per_s
    }

    /// Seconds to move `bytes` split into `ops` operations (e.g. one
    /// direct-access record per latitude): each operation pays latency.
    pub fn transfer_seconds_ops(&self, bytes: u64, ops: usize) -> f64 {
        let ops = ops.max(1);
        ops as f64 * self.latency_s + bytes as f64 / self.bytes_per_s
    }

    /// Effective MB/s for a transfer of `bytes` in `ops` operations.
    pub fn effective_mb_per_s(&self, bytes: u64, ops: usize) -> f64 {
        bytes as f64 / self.transfer_seconds_ops(bytes, ops) / 1e6
    }

    /// Seconds for `streams` concurrent transfers of `bytes` each, sharing
    /// the channel fairly.
    pub fn concurrent_seconds(&self, bytes: u64, streams: usize) -> f64 {
        let streams = streams.max(1);
        self.latency_s + (bytes as f64 * streams as f64) / self.bytes_per_s
    }
}

/// A striped disk array behind one IOP: `n` independent strings.
#[derive(Debug, Clone)]
pub struct DiskArray {
    pub string: Channel,
    pub strings: usize,
    /// The IOP in front of the array caps the aggregate.
    pub iop: Channel,
}

impl DiskArray {
    /// The benchmarked system's 282 GB of disk (Table 2) as 24 strings.
    pub fn benchmarked() -> DiskArray {
        DiskArray { string: Channel::scsi_disk(), strings: 24, iop: Channel::iop() }
    }

    /// Aggregate streaming bandwidth (bytes/s).
    pub fn aggregate_bytes_per_s(&self) -> f64 {
        (self.string.bytes_per_s * self.strings as f64).min(self.iop.bytes_per_s)
    }

    /// Seconds to write `bytes` striped across the array in `ops` records.
    pub fn write_seconds(&self, bytes: u64, ops: usize) -> f64 {
        let per_string_ops = ops.div_ceil(self.strings);
        per_string_ops as f64 * self.string.latency_s + bytes as f64 / self.aggregate_bytes_per_s()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hippi_rate_near_92_mb_s() {
        let h = Channel::hippi();
        // Large single transfer approaches line rate.
        let eff = h.effective_mb_per_s(1 << 30, 1);
        assert!(eff > 90.0 && eff <= 92.0, "{eff}");
    }

    #[test]
    fn small_packets_are_latency_bound() {
        let h = Channel::hippi();
        let small = h.effective_mb_per_s(4096, 1);
        let large = h.effective_mb_per_s(16 << 20, 1);
        assert!(large > 5.0 * small, "{small} vs {large}");
    }

    #[test]
    fn many_ops_pay_many_latencies() {
        let d = Channel::scsi_disk();
        let one = d.transfer_seconds_ops(100 << 20, 1);
        let many = d.transfer_seconds_ops(100 << 20, 1000);
        assert!(many > one + 8.0, "{one} vs {many}");
    }

    #[test]
    fn concurrency_shares_bandwidth() {
        let h = Channel::hippi();
        let one = h.concurrent_seconds(64 << 20, 1);
        let four = h.concurrent_seconds(64 << 20, 4);
        assert!(four > 3.5 * one && four < 4.5 * one);
    }

    #[test]
    fn disk_array_striping_beats_single_string() {
        let arr = DiskArray::benchmarked();
        let single = Channel::scsi_disk().transfer_seconds_ops(1 << 30, 64);
        let striped = arr.write_seconds(1 << 30, 64);
        assert!(striped < single / 8.0, "{striped} vs {single}");
    }

    #[test]
    fn array_capped_by_iop() {
        let mut arr = DiskArray::benchmarked();
        arr.strings = 10_000;
        assert_eq!(arr.aggregate_bytes_per_s(), Channel::iop().bytes_per_s);
    }
}
