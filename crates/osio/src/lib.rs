//! # superux — the SUPER-UX operating-software substrate
//!
//! The paper's benchmarks do not run on bare hardware: they run under
//! SUPER-UX (paper §2.6), whose pieces shape the I/O and production-mix
//! results. This crate models them:
//!
//! - [`chan`] — IOP, HIPPI, SCSI disk strings and the FDDI/IP network;
//! - [`sfs`] — the SFS file system with XMU-backed write-back caching;
//! - [`nqs`] — the NQS batch subsystem, Resource Blocks and
//!   checkpoint/restart, as a discrete-event scheduler with memory-
//!   contention-aware co-scheduling;
//! - [`admission`] — the same Resource-Block gate as a live, stateful
//!   admission controller (jobs arriving one at a time, e.g. from the
//!   `sxd` serving daemon) rather than a replayed batch;
//! - [`iobench`] — the I/O, HIPPI and NETWORK benchmarks of §4.5;
//! - [`mod@prodload`] — the PRODLOAD production-mix benchmark of §4.6
//!   (paper headline: 93 minutes 28 seconds on the SX-4/32);
//! - [`backstore`] — SXBackStore file-archiving management (§2.6.5);
//! - [`mls`] — the Multilevel Security option (§2.6.6).

pub mod accounting;
pub mod admission;
pub mod autoops;
pub mod backstore;
pub mod chan;
pub mod iobench;
pub mod mls;
pub mod nqs;
pub mod prodload;
pub mod qcat;
pub mod queues;
pub mod sfs;

pub use accounting::{account, qacct_table, utilization, JobAccount};
pub use admission::Admission;
pub use autoops::{Action, Console, SystemState};
pub use backstore::BackStore;
pub use chan::{Channel, DiskArray};
pub use mls::{check_read, check_write, Decision, Label, Policy};
pub use nqs::{JobSpec, Nqs, NqsError, ResourceBlock, Schedule};
pub use prodload::{prodload, CcmRates, ProdloadResult};
pub use qcat::{SpoolDir, Stream};
pub use queues::{Queue, QueueComplex, QueueManager, SubmitError};
pub use sfs::{Sfs, WriteBack};
