//! The three memory-bandwidth kernels of §4.2: COPY (unit-stride
//! memory-to-memory), IA (indirect-address gather) and XPOSE (matrix
//! transposition / scatter).
//!
//! Each kernel performs the paper's exact loop nest on real data through
//! the [`Vm`] facade and reports bandwidth counting only the elements of
//! `a` moved to `b` — "we only count the elements of the array a being
//! moved to the array b and not the index values used" (§4.2.3).

use ncar_suite::{best_of, Instance, Series, SmallRng};
use sxsim::{Cost, MachineModel, Vm};

/// Result of one (N, M) instance of a memory kernel.
#[derive(Debug, Clone, Copy)]
pub struct MembwPoint {
    pub instance: Instance,
    /// Best-of-KTRIES cost.
    pub cost: Cost,
    /// Reported bandwidth in MB/s, counting 16 bytes per element moved
    /// (the element is read from `a` and written to `b`).
    pub mb_per_s: f64,
}

fn bandwidth(cost: Cost, elements: usize, clock_ns: f64) -> f64 {
    let seconds = cost.seconds(clock_ns);
    if seconds == 0.0 {
        return 0.0;
    }
    // One read + one write of each 8-byte element.
    (elements as f64 * 16.0) / seconds / 1e6
}

/// COPY: `b(i,j) = a(i,j)` — both loops unit stride in `i`.
///
/// ```fortran
/// do j=1,M
///    do i=1,N
///       b(i,j)=a(i,j)
///    end do
/// end do
/// ```
pub fn copy_kernel(vm: &mut Vm, inst: Instance) -> Cost {
    let Instance { n, m } = inst;
    let a: Vec<f64> = (0..n).map(|i| i as f64 + 0.5).collect();
    let mut b = vec![0.0f64; n];
    vm.copy(&mut b, &a);
    debug_assert_eq!(b[n - 1], a[n - 1]);
    // The M instances are identical columns; execute one functionally and
    // charge M of them.
    scale_cost(vm.take_cost(), m)
}

/// IA: `b(i,j) = a(indx(i),j)` — a gather through a shuffled index vector.
pub fn ia_kernel(vm: &mut Vm, inst: Instance, seed: u64) -> Cost {
    let Instance { n, m } = inst;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut idx);
    let a: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let mut b = vec![0.0f64; n];
    vm.gather(&mut b, &a, &idx);
    // Functional check: a gather through a permutation preserves the set.
    debug_assert_eq!(b.iter().map(|&x| x as usize).max(), Some(n - 1));
    let one = vm.take_cost();
    scale_cost(one, m)
}

/// XPOSE: `b(i,j,k) = a(j,i,k)` — an N x N transposition per instance; the
/// store side runs at stride N.
pub fn xpose_kernel(vm: &mut Vm, inst: Instance) -> Cost {
    let Instance { n, m } = inst;
    let a: Vec<f64> = (0..n * n).map(|i| i as f64).collect();
    let mut b = vec![0.0f64; n * n];
    vm.transpose(&mut b, &a, n);
    debug_assert_eq!(b[1], a[n]);
    let one = vm.take_cost();
    scale_cost(one, m)
}

/// Multiply a per-instance cost by the instance count. The M instances are
/// data-identical, so executing one functionally and charging M preserves
/// both correctness checking and the paper's timing structure.
fn scale_cost(c: Cost, m: usize) -> Cost {
    Cost {
        cycles: c.cycles * m as f64,
        flops: c.flops * m as u64,
        cray_flops: c.cray_flops * m as f64,
        bytes: c.bytes * m as u64,
    }
}

/// Fixed seed for the IA index shuffle, so runs are reproducible.
const IA_SEED: u64 = 0x6e63_6172; // "ncar"

/// Which of the three kernels to sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembwKind {
    Copy,
    Ia,
    Xpose,
}

impl MembwKind {
    pub fn label(self) -> &'static str {
        match self {
            MembwKind::Copy => "COPY",
            MembwKind::Ia => "IA",
            MembwKind::Xpose => "XPOSE",
        }
    }
}

/// Run one kernel instance with KTRIES best-of and report bandwidth.
pub fn run_point(
    model: &MachineModel,
    kind: MembwKind,
    inst: Instance,
    ktries: usize,
) -> MembwPoint {
    let clock = model.clock_ns;
    let cost = best_of(ktries, || {
        let mut vm = Vm::new(model.clone());
        match kind {
            MembwKind::Copy => copy_kernel(&mut vm, inst),
            MembwKind::Ia => ia_kernel(&mut vm, inst, IA_SEED),
            MembwKind::Xpose => xpose_kernel(&mut vm, inst),
        }
    });
    let elements = match kind {
        MembwKind::Copy | MembwKind::Ia => inst.n * inst.m,
        MembwKind::Xpose => inst.n * inst.n * inst.m,
    };
    MembwPoint { instance: inst, cost, mb_per_s: bandwidth(cost, elements, clock) }
}

/// Sweep a kernel over its constant-volume ladder, producing one curve of
/// Figure 5. Ladder points are independent, so they run host-parallel;
/// results stay in ladder order.
pub fn sweep(model: &MachineModel, kind: MembwKind, ladder: &[Instance], ktries: usize) -> Series {
    let points: Vec<(f64, f64)> = ncar_suite::par_map(ladder.to_vec(), |inst| {
        let p = run_point(model, kind, inst, ktries);
        (inst.n as f64, p.mb_per_s)
    });
    let mut s = Series::new(kind.label(), "N", "MB/sec");
    for (x, y) in points {
        s.push(x, y);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncar_suite::constant_volume_ladder;
    use sxsim::presets;

    fn inst(n: usize, m: usize) -> Instance {
        Instance { n, m }
    }

    #[test]
    fn copy_bandwidth_reasonable_on_sx4() {
        let m = presets::sx4_benchmarked();
        let p = run_point(&m, MembwKind::Copy, inst(100_000, 10), 2);
        // The 16 GB/s port bounds the copy; expect several GB/s sustained.
        assert!(p.mb_per_s > 4_000.0, "copy too slow: {} MB/s", p.mb_per_s);
        assert!(p.mb_per_s < 16_000.0, "copy beats the port: {} MB/s", p.mb_per_s);
    }

    #[test]
    fn copy_far_exceeds_ia_and_xpose_on_sx4() {
        // The headline qualitative result of Figure 5.
        let m = presets::sx4_benchmarked();
        let c = run_point(&m, MembwKind::Copy, inst(65_536, 16), 2);
        let g = run_point(&m, MembwKind::Ia, inst(65_536, 16), 2);
        let x = run_point(&m, MembwKind::Xpose, inst(256, 16), 2);
        assert!(c.mb_per_s > 2.0 * g.mb_per_s, "COPY {} vs IA {}", c.mb_per_s, g.mb_per_s);
        assert!(c.mb_per_s > 1.5 * x.mb_per_s, "COPY {} vs XPOSE {}", c.mb_per_s, x.mb_per_s);
    }

    #[test]
    fn small_n_much_slower_than_large_n() {
        let m = presets::sx4_benchmarked();
        let small = run_point(&m, MembwKind::Copy, inst(4, 250_000), 1);
        let large = run_point(&m, MembwKind::Copy, inst(1_000_000, 1), 1);
        assert!(large.mb_per_s > 5.0 * small.mb_per_s);
    }

    #[test]
    fn sweep_produces_full_ladder() {
        let m = presets::sx4_benchmarked();
        let ladder = constant_volume_ladder(4096);
        let s = sweep(&m, MembwKind::Copy, &ladder, 1);
        assert_eq!(s.points.len(), ladder.len());
        assert!(s.peak() > 0.0);
    }

    #[test]
    fn cache_machine_much_slower_than_sx4() {
        let sx = presets::sx4_benchmarked();
        let sp = presets::sparc20();
        let i = inst(100_000, 10);
        let a = run_point(&sx, MembwKind::Copy, i, 1);
        let b = run_point(&sp, MembwKind::Copy, i, 1);
        assert!(a.mb_per_s > 20.0 * b.mb_per_s);
    }

    #[test]
    fn xpose_power_of_two_stride_penalty() {
        // Power-of-two matrix orders collide in the banks; the neighbouring
        // odd order should not be slower.
        let m = presets::sx4_benchmarked();
        let pow2 = run_point(&m, MembwKind::Xpose, inst(512, 4), 1);
        let odd = run_point(&m, MembwKind::Xpose, inst(511, 4), 1);
        assert!(odd.mb_per_s >= pow2.mb_per_s);
    }

    #[test]
    fn volume_accounting_counts_only_data() {
        // 16 bytes per element (read + write), no index traffic in MB/s.
        let m = presets::sx4_benchmarked();
        let p = run_point(&m, MembwKind::Ia, inst(1000, 1), 1);
        let secs = p.cost.seconds(m.clock_ns);
        let implied = p.mb_per_s * 1e6 * secs / 16.0;
        assert!((implied - 1000.0).abs() < 1.0);
        // ...but the ledger does see the index words.
        assert!(p.cost.bytes > 16 * 1000);
    }
}
