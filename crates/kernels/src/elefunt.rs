//! ELEFUNT: elementary function accuracy and performance (§4.1, Table 3).
//!
//! Based on W. J. Cody's Argonne test suite; the paper's version adds a
//! throughput measurement ("millions of function calls per second") for
//! EXP, LOG, PWR, SIN, and SQRT. The accuracy leg checks each intrinsic
//! against mathematical identities over deterministic sample sets and
//! reports the worst error in units of the last place (ULPs); the
//! performance leg runs the vectorized intrinsic through the machine model.

use sxsim::{Intrinsic, MachineModel, Vm};

/// Worst-case error of one intrinsic, in ULPs of the expected result.
#[derive(Debug, Clone, Copy)]
pub struct AccuracyReport {
    pub function: Intrinsic,
    pub max_ulp: f64,
    /// Identity used, for the report text.
    pub identity: &'static str,
}

/// ULP distance between a computed value and a reference.
fn ulp_error(got: f64, want: f64) -> f64 {
    if got == want {
        return 0.0;
    }
    if !got.is_finite() || !want.is_finite() {
        return f64::INFINITY;
    }
    let ulp = want.abs().max(f64::MIN_POSITIVE) * f64::EPSILON;
    (got - want).abs() / ulp
}

/// Deterministic sample points in `[lo, hi)`.
fn samples(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    // A low-discrepancy (golden ratio) sequence: deterministic, covers the
    // interval, and avoids the exactly-representable lattice points a
    // uniform grid would over-sample.
    let phi = 0.618_033_988_749_894_9_f64;
    (0..n)
        .map(|i| {
            let u = (i as f64 * phi).fract();
            lo + u * (hi - lo)
        })
        .collect()
}

/// Check one intrinsic against its identity; returns the worst ULP error.
pub fn check_accuracy(f: Intrinsic) -> AccuracyReport {
    let n = 4096;
    let (max_ulp, identity) = match f {
        Intrinsic::Exp => {
            // exp(x - 1/16) * exp(1/16) == exp(x): Cody's purification trick.
            let e16 = (1.0f64 / 16.0).exp();
            let worst = samples(-20.0, 20.0, n)
                .into_iter()
                .map(|x| ulp_error((x - 1.0 / 16.0).exp() * e16, x.exp()))
                .fold(0.0, f64::max);
            (worst, "exp(x-1/16)*exp(1/16) = exp(x)")
        }
        Intrinsic::Log => {
            // log(x^2) == 2 log(x), sampled away from x = 1 where the
            // identity is ill-conditioned.
            let worst = samples(2.0, 8.0, n)
                .into_iter()
                .map(|x| ulp_error((x * x).ln(), 2.0 * x.ln()))
                .fold(0.0, f64::max);
            (worst, "log(x*x) = 2*log(x), x in [2,8)")
        }
        Intrinsic::Pow => {
            // (x*x)^1.5 == x^3 for x > 0.
            let worst = samples(0.5, 8.0, n)
                .into_iter()
                .map(|x| ulp_error((x * x).powf(1.5), x.powf(3.0)))
                .fold(0.0, f64::max);
            (worst, "(x*x)^(3/2) = x^3")
        }
        Intrinsic::Sin => {
            // sin^2(x) + cos^2(x) == 1 — well-conditioned everywhere.
            let worst = samples(-6.0, 6.0, n)
                .into_iter()
                .map(|x| {
                    let (s, c) = x.sin_cos();
                    ulp_error(s * s + c * c, 1.0)
                })
                .fold(0.0, f64::max);
            (worst, "sin^2(x) + cos^2(x) = 1")
        }
        Intrinsic::Sqrt => {
            // sqrt(x)^2 == x.
            let worst = samples(0.0625, 16.0, n)
                .into_iter()
                .map(|x| {
                    let r = x.sqrt();
                    ulp_error(r * r, x)
                })
                .fold(0.0, f64::max);
            (worst, "sqrt(x)^2 = x")
        }
    };
    AccuracyReport { function: f, max_ulp, identity }
}

/// Run the full accuracy battery; the suite passes if every intrinsic is
/// accurate to within a few ULPs (identity tests compound two rounding
/// errors, so the bound is looser than 0.5).
pub fn accuracy_suite() -> (bool, Vec<AccuracyReport>) {
    let reports: Vec<AccuracyReport> = Intrinsic::ALL.iter().map(|&f| check_accuracy(f)).collect();
    let passed = reports.iter().all(|r| r.max_ulp < 8.0);
    (passed, reports)
}

/// Throughput of one intrinsic on `model`, in millions of calls per second
/// (the unit of the paper's Table 3).
pub fn mcalls_per_second(model: &MachineModel, f: Intrinsic, n: usize) -> f64 {
    let mut vm = Vm::new(model.clone());
    let x: Vec<f64> = samples(0.1, 2.0, n);
    let mut y = vec![0.0f64; n];
    match f {
        Intrinsic::Exp => vm.exp(&mut y, &x),
        Intrinsic::Log => vm.log(&mut y, &x),
        Intrinsic::Sin => vm.sin(&mut y, &x),
        Intrinsic::Sqrt => vm.sqrt(&mut y, &x),
        Intrinsic::Pow => {
            let e: Vec<f64> = samples(0.5, 1.5, n);
            vm.pow(&mut y, &x, &e);
        }
    }
    // Functional spot check: results must be finite and consistent.
    assert!(y.iter().all(|v| v.is_finite()));
    let secs = vm.seconds();
    n as f64 / secs / 1e6
}

/// The Table 3 measurement: all five intrinsics on `model` at the
/// benchmark's vector length.
pub fn table3(model: &MachineModel) -> Vec<(Intrinsic, f64)> {
    Intrinsic::ALL.iter().map(|&f| (f, mcalls_per_second(model, f, 100_000))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxsim::presets;

    #[test]
    fn host_libm_passes_accuracy() {
        let (passed, reports) = accuracy_suite();
        assert!(passed, "reports: {reports:?}");
        for r in &reports {
            assert!(r.max_ulp < 8.0, "{:?}: {} ULPs", r.function, r.max_ulp);
        }
    }

    #[test]
    fn ulp_error_basics() {
        assert_eq!(ulp_error(1.0, 1.0), 0.0);
        let next = f64::from_bits(1.0f64.to_bits() + 1);
        let e = ulp_error(next, 1.0);
        assert!((e - 1.0).abs() < 0.51, "one ulp apart: {e}");
        assert_eq!(ulp_error(f64::INFINITY, 1.0), f64::INFINITY);
    }

    #[test]
    fn samples_stay_in_range_and_are_distinct() {
        let s = samples(2.0, 3.0, 1000);
        assert!(s.iter().all(|&x| (2.0..3.0).contains(&x)));
        let mut sorted = s.clone();
        sorted.sort_by(f64::total_cmp);
        sorted.dedup();
        assert!(sorted.len() > 990);
    }

    #[test]
    fn sx4_throughput_tens_of_mcalls() {
        let m = presets::sx4_benchmarked();
        for (f, rate) in table3(&m) {
            assert!(rate > 20.0 && rate < 200.0, "{}: {rate} Mcalls/s", f.name());
        }
    }

    #[test]
    fn sqrt_is_fastest_pow_is_slowest_on_sx4() {
        let m = presets::sx4_benchmarked();
        let rates: Vec<(Intrinsic, f64)> = table3(&m);
        let get = |f: Intrinsic| rates.iter().find(|(g, _)| *g == f).unwrap().1;
        assert!(get(Intrinsic::Sqrt) > get(Intrinsic::Exp));
        assert!(get(Intrinsic::Pow) < get(Intrinsic::Exp));
    }

    #[test]
    fn workstations_orders_of_magnitude_slower() {
        let sx = presets::sx4_benchmarked();
        let sp = presets::sparc20();
        let a = mcalls_per_second(&sx, Intrinsic::Exp, 100_000);
        let b = mcalls_per_second(&sp, Intrinsic::Exp, 100_000);
        assert!(a > 50.0 * b, "sx4 {a} vs sparc {b}");
    }
}
