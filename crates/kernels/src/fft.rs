//! FFTPACK-style fast Fourier transforms for the RFFT/VFFT coding-style
//! benchmarks (§4.3).
//!
//! The paper's pair of kernels come from P. N. Swarztrauber's FFTPACK: the
//! same mixed-radix real-to-complex transform written in two loop orders —
//! RFFT with the FFT axis fastest (cache style) and VFFT with the instance
//! axis fastest (vector style). "The only significant difference between
//! the two benchmarks is the order of the loops."
//!
//! This module implements a genuine mixed-radix (factors 2, 3, 5)
//! Cooley-Tukey transform that really computes spectra (tested against a
//! naive DFT, round-trips, Parseval), and charges the simulator according
//! to the loop order under test: RFFT prices each instance's butterfly
//! loops at their natural (short) vector lengths, VFFT prices every
//! butterfly at vector length M across instances.

use sxsim::{Access, Cost, MachineModel, VecOp, Vm, VopClass};

/// A complex number; local so the workspace needs no numerics dependency.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    pub re: f64,
    pub im: f64,
}

impl C64 {
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };

    pub fn new(re: f64, im: f64) -> C64 {
        C64 { re, im }
    }

    /// e^{i theta}.
    pub fn cis(theta: f64) -> C64 {
        C64 { re: theta.cos(), im: theta.sin() }
    }

    pub fn conj(self) -> C64 {
        C64 { re: self.re, im: -self.im }
    }

    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }
}

impl std::ops::Add for C64 {
    type Output = C64;
    fn add(self, o: C64) -> C64 {
        C64 { re: self.re + o.re, im: self.im + o.im }
    }
}

impl std::ops::Sub for C64 {
    type Output = C64;
    fn sub(self, o: C64) -> C64 {
        C64 { re: self.re - o.re, im: self.im - o.im }
    }
}

impl std::ops::Mul for C64 {
    type Output = C64;
    fn mul(self, o: C64) -> C64 {
        C64 { re: self.re * o.re - self.im * o.im, im: self.re * o.im + self.im * o.re }
    }
}

impl std::ops::Mul<f64> for C64 {
    type Output = C64;
    fn mul(self, s: f64) -> C64 {
        C64 { re: self.re * s, im: self.im * s }
    }
}

/// Factor `n` into the radices FFTPACK supports, largest-length-first
/// order of application. Returns `None` if `n` has a prime factor other
/// than 2, 3 or 5.
pub fn factorize(mut n: usize) -> Option<Vec<usize>> {
    if n == 0 {
        return None;
    }
    let mut f = Vec::new();
    for &r in &[5usize, 3, 2] {
        while n.is_multiple_of(r) {
            f.push(r);
            n /= r;
        }
    }
    if n == 1 {
        Some(f)
    } else {
        None
    }
}

/// Transform direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    Forward,
    Inverse,
}

impl Direction {
    fn sign(self) -> f64 {
        match self {
            Direction::Forward => -1.0,
            Direction::Inverse => 1.0,
        }
    }
}

/// In-place complex FFT of length `n` (must factor into 2/3/5).
///
/// Recursive decimation-in-time over the smallest remaining factor; the
/// inverse is unnormalized (scale by 1/n to invert a forward transform).
pub fn fft(x: &mut [C64], dir: Direction) {
    let n = x.len();
    if n <= 1 {
        return;
    }
    let factors =
        factorize(n).unwrap_or_else(|| panic!("FFT length {n} has a factor other than 2, 3, 5"));
    let mut scratch = vec![C64::ZERO; n];
    fft_rec(x, &mut scratch, n, 1, dir.sign(), &factors);
}

/// Recursive worker: transforms `x[0], x[stride], ..., x[(n-1)*stride]`.
fn fft_rec(
    x: &mut [C64],
    scratch: &mut [C64],
    n: usize,
    stride: usize,
    sign: f64,
    factors: &[usize],
) {
    if n == 1 {
        return;
    }
    let r = *factors.last().expect("factors exhausted before n reached 1");
    debug_assert_eq!(n % r, 0);
    let l = n / r;
    let sub_factors = &factors[..factors.len() - 1];

    // Decimate: r interleaved subsequences, each transformed recursively.
    for j in 0..r {
        fft_rec(&mut x[j * stride..], scratch, l, r * stride, sign, sub_factors);
    }

    // Combine with twiddles into scratch, then copy back.
    let w = |k: usize| C64::cis(sign * 2.0 * std::f64::consts::PI * k as f64 / n as f64);
    for k in 0..l {
        for jo in 0..r {
            let out_idx = k + jo * l;
            let mut acc = C64::ZERO;
            for j in 0..r {
                // sub-transform j, bin k lives at x[(j + k*r) * stride]
                let v = x[(j + k * r) * stride];
                acc = acc + v * w((out_idx * j) % n);
            }
            scratch[out_idx] = acc;
        }
    }
    for i in 0..n {
        x[i * stride] = scratch[i];
    }
}

/// Forward real-to-complex transform: returns the `n/2 + 1` non-redundant
/// bins of the spectrum of a real sequence.
pub fn rfft_spectrum(input: &[f64]) -> Vec<C64> {
    let n = input.len();
    let mut x: Vec<C64> = input.iter().map(|&v| C64::new(v, 0.0)).collect();
    fft(&mut x, Direction::Forward);
    x.truncate(n / 2 + 1);
    x
}

/// Inverse of [`rfft_spectrum`]: reconstruct the real sequence of length `n`.
pub fn irfft(spectrum: &[C64], n: usize) -> Vec<f64> {
    assert_eq!(spectrum.len(), n / 2 + 1);
    let mut x = vec![C64::ZERO; n];
    x[..spectrum.len()].copy_from_slice(spectrum);
    // Hermitian symmetry fills the upper half.
    for k in spectrum.len()..n {
        x[k] = x[n - k].conj();
    }
    fft(&mut x, Direction::Inverse);
    x.into_iter().map(|c| c.re / n as f64).collect()
}

/// Naive O(n^2) DFT used as the correctness oracle in tests.
pub fn naive_dft(input: &[C64], dir: Direction) -> Vec<C64> {
    let n = input.len();
    let sign = dir.sign();
    (0..n)
        .map(|k| {
            let mut acc = C64::ZERO;
            for (j, &v) in input.iter().enumerate() {
                acc = acc
                    + v * C64::cis(
                        sign * 2.0 * std::f64::consts::PI * (j * k % n) as f64 / n as f64,
                    );
            }
            acc
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Timing: the two loop orders of §4.3.
// ---------------------------------------------------------------------------

/// Loop order of the benchmark variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopOrder {
    /// RFFT: array a(N, M), FFT axis fastest. Butterfly loops vectorize at
    /// their natural lengths (l = n / r per stage), separately per instance.
    AxisFastest,
    /// VFFT: array a(M, N), instance axis fastest. Every butterfly is a
    /// unit-stride vector operation of length M.
    InstanceFastest,
}

/// Real floating point operations in one radix-`r` combine stage of a
/// length-`n` transform: `l*(r-1)` complex twiddle multiplies (6 flops)
/// plus `l*r*(r-1)` complex additions (2 flops). For r = 2 this is the
/// textbook 5n per stage.
fn stage_flops(n: usize, r: usize) -> usize {
    let l = n / r;
    6 * l * (r - 1) + 2 * l * r * (r - 1)
}

/// Total real flops our mixed-radix transform performs for length `n`.
pub fn transform_flops(n: usize) -> usize {
    let mut total = 0;
    let mut rem = n;
    // Walk the recursion top-down: level k has n/rem sub-transforms of the
    // current size, each combined with the radix the recursion applies at
    // that level (the *last* remaining factor — see `fft_rec`).
    let factors = factorize(n).expect("length must factor into 2/3/5");
    for &r in factors.iter().rev() {
        total += (n / rem) * stage_flops(rem, r);
        rem /= r;
    }
    total
}

/// Charge `vm` for `m` instances of a length-`n` transform executed in the
/// given loop order, and return the flops charged.
///
/// The arithmetic is identical between the orders — only the vector lengths
/// and access strides differ, which is precisely the paper's point.
pub fn charge_transform(vm: &mut Vm, n: usize, m: usize, order: LoopOrder) -> u64 {
    let factors = factorize(n).expect("length must factor into 2/3/5");
    let mut rem = n;
    let mut total_flops = 0u64;
    for &r in factors.iter().rev() {
        // This recursion level has n/rem groups, each a radix-r combine over
        // sub-length l = rem/r... walking top-down: level sizes are
        // n, n/r1, n/(r1 r2), ...
        let groups = n / rem;
        let l = rem / r;
        let flops_level = groups * stage_flops(rem, r);
        total_flops += (flops_level * m) as u64;
        match order {
            LoopOrder::AxisFastest => {
                // Per instance: the inner loop runs over the l sub-bins of a
                // group; each group issues ~r*(r-1) fused ops per complex
                // component. Strides follow the decimation (r apart).
                let ops_per_group = (stage_flops(rem, r) / 2).div_ceil(l).max(1);
                let op = VecOp::new(
                    l,
                    VopClass::Fma,
                    &[Access::Stride(r), Access::Stride(1)],
                    &[Access::Stride(1)],
                );
                vm.charge_vector_op_repeated(&op, groups * ops_per_group);
            }
            LoopOrder::InstanceFastest => {
                // All m instances advance together: each scalar operation of
                // the stage becomes one unit-stride vector op of length m.
                let ops = (flops_level / 2).max(1);
                let op = VecOp::new(
                    m,
                    VopClass::Fma,
                    &[Access::Stride(1), Access::Stride(1)],
                    &[Access::Stride(1)],
                );
                vm.charge_vector_op_repeated(&op, ops);
            }
        }
        rem = l;
    }
    total_flops
}

/// Like [`charge_transform`] with `LoopOrder::InstanceFastest`, but for a
/// caller that fuses `fused` independent transforms (levels x fields) into
/// each vector operation: the vector length grows to `m * fused` while the
/// total arithmetic stays that of `m` instances per call. This is how
/// multilevel spectral models drive their FFTs.
pub fn charge_transform_fused(vm: &mut Vm, n: usize, m: usize, fused: usize) -> u64 {
    let fused = fused.max(1);
    let factors = factorize(n).expect("length must factor into 2/3/5");
    let mut rem = n;
    let mut total_flops = 0u64;
    for &r in factors.iter().rev() {
        let groups = n / rem;
        let flops_level = groups * stage_flops(rem, r);
        total_flops += (flops_level * m) as u64;
        let ops = (flops_level / 2).div_ceil(fused).max(1);
        let op = VecOp::new(
            m * fused,
            VopClass::Fma,
            &[Access::Stride(1), Access::Stride(1)],
            &[Access::Stride(1)],
        );
        vm.charge_vector_op_repeated(&op, ops);
        rem /= r;
    }
    total_flops
}

/// Scale an axis-fastest charge across instances: the per-instance cost was
/// charged once; instances are independent repeats.
fn scale(c: Cost, m: usize) -> Cost {
    Cost {
        cycles: c.cycles * m as f64,
        flops: c.flops * m as u64,
        cray_flops: c.cray_flops * m as f64,
        bytes: c.bytes * m as u64,
    }
}

/// Result of one benchmark point.
#[derive(Debug, Clone, Copy)]
pub struct FftPoint {
    pub n: usize,
    pub m: usize,
    pub mflops: f64,
    pub cost: Cost,
}

/// Run one (N, M) point of RFFT or VFFT on `model`: functionally transform
/// one instance (verifying it round-trips) and charge the machine for all M
/// in the requested loop order.
pub fn run_fft_point(model: &MachineModel, n: usize, m: usize, order: LoopOrder) -> FftPoint {
    // Functional leg: a deterministic real signal, transformed and inverted.
    let signal: Vec<f64> =
        (0..n).map(|i| (i as f64 * 0.37).sin() + 0.25 * (i as f64 * 1.13).cos()).collect();
    let spec = rfft_spectrum(&signal);
    let back = irfft(&spec, n);
    let err = signal.iter().zip(&back).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    assert!(err < 1e-9, "FFT round-trip failed for n={n}: err={err}");

    // Timing leg.
    let mut vm = Vm::new(model.clone());
    let cost = match order {
        LoopOrder::AxisFastest => {
            charge_transform(&mut vm, n, 1, order);
            scale(vm.take_cost(), m)
        }
        LoopOrder::InstanceFastest => {
            charge_transform(&mut vm, n, m, order);
            vm.take_cost()
        }
    };
    let mflops = cost.mflops(model.clock_ns);
    FftPoint { n, m, mflops, cost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxsim::presets;

    fn approx(a: C64, b: C64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn factorize_235_lengths() {
        assert_eq!(factorize(1), Some(vec![]));
        assert_eq!(factorize(8), Some(vec![2, 2, 2]));
        assert_eq!(factorize(12), Some(vec![3, 2, 2]));
        assert_eq!(factorize(60), Some(vec![5, 3, 2, 2]));
        assert_eq!(factorize(7), None);
        assert_eq!(factorize(0), None);
        assert_eq!(factorize(1280), Some(vec![5, 2, 2, 2, 2, 2, 2, 2, 2]));
    }

    #[test]
    fn fft_matches_naive_dft_all_families() {
        for n in [2usize, 3, 4, 5, 6, 8, 10, 12, 15, 16, 20, 24, 30, 48, 60, 64, 80, 96] {
            let input: Vec<C64> =
                (0..n).map(|i| C64::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos())).collect();
            let mut x = input.clone();
            fft(&mut x, Direction::Forward);
            let expect = naive_dft(&input, Direction::Forward);
            for (k, (&got, &want)) in x.iter().zip(&expect).enumerate() {
                assert!(
                    approx(got, want, 1e-9 * n as f64),
                    "n={n} bin {k}: got {got:?}, want {want:?}"
                );
            }
        }
    }

    #[test]
    fn forward_inverse_roundtrip() {
        for n in [4usize, 12, 40, 120, 128, 1280] {
            let input: Vec<C64> = (0..n).map(|i| C64::new(i as f64, -(i as f64) * 0.5)).collect();
            let mut x = input.clone();
            fft(&mut x, Direction::Forward);
            fft(&mut x, Direction::Inverse);
            for (a, b) in x.iter().zip(&input) {
                let scaled = *a * (1.0 / n as f64);
                assert!(approx(scaled, *b, 1e-8 * n as f64));
            }
        }
    }

    #[test]
    fn parseval_holds() {
        let n = 240;
        let input: Vec<C64> = (0..n).map(|i| C64::new((i as f64).sin(), 0.0)).collect();
        let time_energy: f64 = input.iter().map(|c| c.norm_sqr()).sum();
        let mut x = input;
        fft(&mut x, Direction::Forward);
        let freq_energy: f64 = x.iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy.max(1.0));
    }

    #[test]
    fn rfft_spectrum_of_cosine_peaks_at_bin() {
        let n = 64;
        let k0 = 5;
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * k0 as f64 * i as f64 / n as f64).cos())
            .collect();
        let spec = rfft_spectrum(&signal);
        let (peak_bin, _) = spec
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap();
        assert_eq!(peak_bin, k0);
        assert!((spec[k0].abs() - n as f64 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn irfft_inverts_rfft() {
        for n in [6usize, 20, 48, 160, 384, 640] {
            let signal: Vec<f64> =
                (0..n).map(|i| (i as f64 * 0.9).sin() * (i as f64 * 0.11).cos()).collect();
            let back = irfft(&rfft_spectrum(&signal), n);
            for (a, b) in signal.iter().zip(&back) {
                assert!((a - b).abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn transform_flops_is_5nlogn_for_pow2() {
        for n in [8usize, 64, 1024] {
            let f = transform_flops(n) as f64;
            let expect = 5.0 * n as f64 * (n as f64).log2();
            assert!((f - expect).abs() < 1e-9, "n={n}: {f} vs {expect}");
        }
    }

    #[test]
    fn vfft_order_of_magnitude_faster_than_rfft_on_sx4() {
        // The headline qualitative result of Figures 6 and 7.
        let m = presets::sx4_benchmarked();
        let r = run_fft_point(&m, 256, 500, LoopOrder::AxisFastest);
        let v = run_fft_point(&m, 256, 500, LoopOrder::InstanceFastest);
        let ratio = v.mflops / r.mflops;
        assert!(ratio > 5.0 && ratio < 60.0, "VFFT/RFFT ratio {ratio}");
    }

    #[test]
    fn vfft_mflops_grows_with_vector_length() {
        let m = presets::sx4_benchmarked();
        let short = run_fft_point(&m, 256, 1, LoopOrder::InstanceFastest);
        let long = run_fft_point(&m, 256, 500, LoopOrder::InstanceFastest);
        assert!(long.mflops > 5.0 * short.mflops);
    }

    #[test]
    fn charged_flops_match_transform_flops() {
        let model = presets::sx4_benchmarked();
        let mut vm = Vm::new(model);
        let f = charge_transform(&mut vm, 48, 7, LoopOrder::InstanceFastest);
        assert_eq!(f, (transform_flops(48) * 7) as u64);
    }
}
