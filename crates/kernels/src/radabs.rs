//! RADABS: the raw-performance kernel (§4.4).
//!
//! "RADABS is intended to measure the proposed system's floating point
//! performance on the single most time consuming subroutine in NCAR's
//! CCM2. It is a computationally expensive radiation physics routine ...
//! Much of the time in RADABS is spent in intrinsic function calls (EXP,
//! LOG, PWR, SIN, and SQRT)."
//!
//! This port computes longwave absorptivities between every pair of the
//! `nlev` model levels with a Malkmus narrow-band model, Planck-weighted
//! and zenith-modulated, vectorized across a batch of columns — the
//! calculation is "embarrassingly parallel in the latitude and longitude
//! directions" and, as in the benchmark, every column holds identical
//! initial data. Performance is reported in Cray Y-MP equivalent Mflops.

use sxsim::{Cost, MachineModel, Vm};

/// Number of vertical levels in CCM2's production configuration.
pub const NLEV: usize = 18;

/// Deterministic standard-atmosphere-like column used to initialize every
/// column of the batch (level 0 = top of model).
pub fn standard_column(nlev: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut pressure = Vec::with_capacity(nlev); // hPa
    let mut temperature = Vec::with_capacity(nlev); // K
    let mut h2o_path = Vec::with_capacity(nlev); // kg/m^2 cumulative from top
    let mut cum = 0.0f64;
    for k in 0..nlev {
        let sigma = (k as f64 + 0.5) / nlev as f64;
        let p = 1000.0 * sigma.powf(1.2) + 2.0;
        let t = 216.0 + 72.0 * sigma.powf(1.5);
        // Water vapor concentrated near the surface.
        let q = 3.0e-3 * (-(1.0 - sigma) * 5.0).exp() + 3.0e-6;
        cum += q * p;
        pressure.push(p);
        temperature.push(t);
        h2o_path.push(cum);
    }
    (pressure, temperature, h2o_path)
}

/// Result of a RADABS run.
#[derive(Debug, Clone)]
pub struct RadabsResult {
    /// Simulation cost ledger.
    pub cost: Cost,
    /// Cray-equivalent Mflops achieved on the run's machine.
    pub cray_mflops: f64,
    /// Absorptivity matrix of the first column, `nlev * nlev`, for
    /// correctness checks (abs[k1*nlev + k2]).
    pub absorptivity: Vec<f64>,
}

/// Band-model constants (representative mid-infrared H2O values).
const BAND_S: f64 = 8.5; // line strength
const BAND_BETA: f64 = 0.12; // line-width parameter
const STEFAN: f64 = 5.67e-8;

/// Run RADABS over a batch of `ncol` identical columns with `nlev` levels.
///
/// All arithmetic flows through the [`Vm`] facade as vectors across the
/// column batch, so the machine model prices it exactly as it would price
/// the Fortran original's column-vectorized loops.
pub fn radabs(vm: &mut Vm, ncol: usize, nlev: usize) -> RadabsResult {
    assert!(ncol > 0 && nlev >= 2);
    let (pressure, temperature, h2o_path) = standard_column(nlev);

    // Broadcast the column state across the batch.
    let bcast = |v: f64| vec![v; ncol];

    // Per-level precomputation: Planck emission B = sigma*T^4 via PWR,
    // log-pressure scaling, and a zenith modulation via SIN.
    let mut planck = vec![vec![0.0f64; ncol]; nlev];
    let mut logp = vec![vec![0.0f64; ncol]; nlev];
    let mut zen = vec![vec![0.0f64; ncol]; nlev];
    let four = bcast(4.0);
    for k in 0..nlev {
        let t = bcast(temperature[k]);
        let mut t4 = vec![0.0; ncol];
        vm.pow(&mut t4, &t, &four); // PWR
        vm.scale(&mut planck[k], STEFAN, &t4);
        let p = bcast(pressure[k]);
        vm.log(&mut logp[k], &p); // LOG
        let ang = bcast(0.3 + 0.05 * k as f64);
        vm.sin(&mut zen[k], &ang); // SIN
    }

    // Pairwise absorptivity: Malkmus band model on the path between levels.
    let c1 = 4.0 * BAND_S / (std::f64::consts::PI * BAND_BETA);
    let c2 = 0.5 * std::f64::consts::PI * BAND_BETA;
    let mut absorptivity = vec![0.0f64; nlev * nlev];
    let mut u = vec![0.0f64; ncol];
    let mut x = vec![0.0f64; ncol];
    let mut root = vec![0.0f64; ncol];
    let mut a = vec![0.0f64; ncol];
    let mut negs = vec![0.0f64; ncol];
    let mut tau = vec![0.0f64; ncol];
    let mut contrib = vec![0.0f64; ncol];
    let ones = bcast(1.0);
    for k1 in 0..nlev {
        let pu1 = bcast(h2o_path[k1]);
        for k2 in (k1 + 1)..nlev {
            let pu2 = bcast(h2o_path[k2]);
            // Absorber path between the levels, pressure-scaled.
            vm.sub(&mut u, &pu2, &pu1);
            let scale = 1.0 + 0.08 * (logp[k2][0] - logp[k1][0]).abs();
            vm.scale(&mut x, c1 * scale, &u);
            vm.add_scalar_in_place(&mut x, 1.0);
            vm.sqrt(&mut root, &x); // SQRT
            vm.sub(&mut a, &root, &ones);
            vm.scale_in_place(&mut a, c2);
            vm.scale(&mut negs, -1.0, &a);
            vm.exp(&mut tau, &negs); // EXP
                                     // Absorptivity = (1 - transmission), Planck- and zenith-weighted.
            vm.sub(&mut contrib, &ones, &tau);
            vm.mul_in_place(&mut contrib, &zen[k2]);
            let w = planck[k2][0] / (planck[nlev - 1][0] + 1e-30);
            vm.scale_in_place(&mut contrib, w);
            let val = contrib[0];
            absorptivity[k1 * nlev + k2] = val;
            absorptivity[k2 * nlev + k1] = val;
        }
    }

    let cost = vm.cost();
    let cray_mflops = cost.cray_mflops(vm.model().clock_ns);
    RadabsResult { cost, cray_mflops, absorptivity }
}

/// Column count of the benchmark configuration: the full T42 horizontal
/// grid (64 latitudes x 128 longitudes), every column identical — "for the
/// purposes of the benchmark, the initial data is identical in each
/// vertical column."
pub const BENCH_NCOL: usize = 64 * 128;

/// Run RADABS on a fresh processor of `model` over a batch of `ncol`
/// columns and return the achieved Cray-equivalent Mflops.
pub fn radabs_mflops(model: &MachineModel, ncol: usize, reps: usize) -> f64 {
    let mut vm = Vm::new(model.clone());
    let mut last = None;
    for _ in 0..reps.max(1) {
        last = Some(radabs(&mut vm, ncol, NLEV));
    }
    last.expect("at least one rep").cray_mflops
}

/// The paper's configuration: full grid batch on one processor.
pub fn radabs_benchmark(model: &MachineModel) -> f64 {
    radabs_mflops(model, BENCH_NCOL, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxsim::presets;

    fn run(ncol: usize) -> RadabsResult {
        let mut vm = Vm::new(presets::sx4_benchmarked());
        radabs(&mut vm, ncol, NLEV)
    }

    #[test]
    fn absorptivity_in_physical_range() {
        let r = run(32);
        for (i, &a) in r.absorptivity.iter().enumerate() {
            assert!((0.0..1.0).contains(&a), "abs[{i}] = {a} out of [0,1)");
        }
    }

    #[test]
    fn diagonal_is_zero_and_matrix_symmetric() {
        let r = run(16);
        for k in 0..NLEV {
            assert_eq!(r.absorptivity[k * NLEV + k], 0.0);
            for j in 0..NLEV {
                assert_eq!(r.absorptivity[k * NLEV + j], r.absorptivity[j * NLEV + k]);
            }
        }
    }

    #[test]
    fn absorptivity_grows_with_path_from_top() {
        // Fixing the upper level at the model top, deeper lower levels see
        // more absorber (within the same zenith/planck weights the trend
        // holds for the top row).
        let r = run(16);
        let top_row: Vec<f64> = (1..NLEV).map(|k2| r.absorptivity[k2]).collect();
        assert!(top_row.windows(2).filter(|w| w[1] >= w[0]).count() >= top_row.len() / 2);
        assert!(top_row.last().unwrap() > top_row.first().unwrap());
    }

    #[test]
    fn intrinsics_dominate_cray_flops() {
        // The paper: "Much of the time in RADABS is spent in intrinsic
        // function calls." Cray-equivalent flops should far exceed raw ops.
        let r = run(64);
        assert!(r.cost.cray_flops > 1.5 * r.cost.flops as f64);
    }

    #[test]
    fn vector_machines_crush_cache_machines() {
        // Table 1 ordering: Y-MP >> J90 >> RS6K ~ SPARC20.
        let ymp = radabs_benchmark(&presets::cray_ymp());
        let j90 = radabs_benchmark(&presets::cri_j90());
        let rs6k = radabs_benchmark(&presets::rs6000_590());
        let sparc = radabs_benchmark(&presets::sparc20());
        assert!(ymp > 2.0 * j90, "ymp {ymp} vs j90 {j90}");
        assert!(j90 > 1.5 * rs6k, "j90 {j90} vs rs6k {rs6k}");
        assert!(ymp > 8.0 * sparc, "ymp {ymp} vs sparc {sparc}");
    }

    #[test]
    fn sx4_is_fastest_machine() {
        let sx4 = radabs_benchmark(&presets::sx4_benchmarked());
        let ymp = radabs_benchmark(&presets::cray_ymp());
        assert!(sx4 > 3.0 * ymp, "sx4 {sx4} vs ymp {ymp}");
    }

    #[test]
    fn sx4_lands_near_paper_headline() {
        // §4.4: 865.9 Cray Y-MP equivalent Mflops on the 9.2 ns SX-4/1.
        let sx4 = radabs_benchmark(&presets::sx4_benchmarked());
        assert!(
            (600.0..1200.0).contains(&sx4),
            "SX-4 RADABS {sx4} Mflops outside the calibration band around 865.9"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(32);
        let b = run(32);
        assert_eq!(a.absorptivity, b.absorptivity);
        assert_eq!(a.cost.cycles, b.cost.cycles);
    }

    #[test]
    fn standard_column_monotone() {
        let (p, t, u) = standard_column(NLEV);
        assert!(p.windows(2).all(|w| w[1] > w[0]), "pressure increases downward");
        assert!(t.windows(2).all(|w| w[1] >= w[0]), "temperature increases downward");
        assert!(u.windows(2).all(|w| w[1] > w[0]), "path accumulates");
    }
}

#[cfg(test)]
mod calibration {
    use super::*;
    use sxsim::presets;

    /// Not a test: prints the calibration table. Run with
    /// `cargo test -p ncar-kernels --release -- --ignored --nocapture calibration`.
    #[test]
    #[ignore = "calibration printout, not an assertion"]
    fn print_radabs_calibration() {
        for m in [
            presets::sx4_benchmarked(),
            presets::cray_ymp(),
            presets::cri_j90(),
            presets::sparc20(),
            presets::rs6000_590(),
        ] {
            println!("{:<22} {:>8.1} Cray-equivalent Mflops", m.name.clone(), radabs_benchmark(&m));
        }
    }
}
