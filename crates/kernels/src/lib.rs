//! # ncar-kernels — the kernel benchmarks of the NCAR suite
//!
//! Rust ports of the suite's kernels, each computing real results through
//! the `sxsim` facade so that correctness and simulated performance come
//! from the same code:
//!
//! - [`paranoia`] — arithmetic-operation correctness (Kahan);
//! - [`elefunt`] — intrinsic accuracy + Mcalls/s throughput (Cody + the
//!   paper's performance extension; Table 3);
//! - [`membw`] — COPY / IA / XPOSE memory-bandwidth ladders (Figure 5);
//! - [`mod@fft`] — FFTPACK-style mixed-radix real FFTs in the two loop orders
//!   RFFT and VFFT (Figures 6 and 7);
//! - [`mod@radabs`] — the CCM2 radiation-physics raw-performance kernel
//!   (865.9 Cray-equivalent Mflops on the benchmarked SX-4/1).

pub mod elefunt;
pub mod fft;
pub mod membw;
pub mod paranoia;
pub mod radabs;

pub use fft::{fft, irfft, rfft_spectrum, Direction, LoopOrder, C64};
pub use membw::MembwKind;
pub use radabs::{radabs, radabs_mflops, NLEV};
