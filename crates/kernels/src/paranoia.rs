//! PARANOIA: the arithmetic-operation correctness test (§4.1).
//!
//! A Rust rendering of the core checks of Kahan's PARANOIA: radix and
//! precision discovery, guard digits, rounding behaviour of the four basic
//! operations, underflow/denormal handling and overflow behaviour. As in
//! the original, findings are graded FAILURE > SERIOUS DEFECT > DEFECT >
//! FLAW; the benchmark is pass/fail ("the SX-4 passed these tests") and a
//! conforming IEEE 754 implementation — which the SX-4 provides in its
//! IEEE mode, and which Rust's `f64` is — reports no findings.
//!
//! Every probe is written against `black_box` values so a const-folding
//! compiler cannot optimize the arithmetic away.

use std::hint::black_box;

/// Severity grades, in PARANOIA's order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Flaw,
    Defect,
    SeriousDefect,
    Failure,
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Finding {
    pub severity: Severity,
    pub message: String,
}

/// Outcome of the whole battery.
#[derive(Debug, Clone)]
pub struct ParanoiaReport {
    /// Discovered floating point radix.
    pub radix: f64,
    /// Discovered significand precision in radix digits.
    pub digits: u32,
    pub findings: Vec<Finding>,
    /// Human-readable log of what was checked.
    pub log: Vec<String>,
}

impl ParanoiaReport {
    /// PARANOIA passes when nothing worse than a flaw was found.
    pub fn passed(&self) -> bool {
        self.findings.iter().all(|f| f.severity < Severity::Defect)
    }
}

/// Discover the radix the way PARANOIA does: grow `a` by doubling until
/// `(a + 1) - a != 1` (precision exhausted), then find the smallest `b`
/// with `(a + b) - a != 0`.
fn discover_radix() -> f64 {
    let mut a = 1.0f64;
    loop {
        a = black_box(a + a);
        let probe = black_box(black_box(a + 1.0) - a);
        if black_box(probe - 1.0) != 0.0 {
            break;
        }
    }
    let mut b = 1.0f64;
    loop {
        let radix = black_box(black_box(a + b) - a);
        if radix != 0.0 {
            return radix;
        }
        b = black_box(b + b);
    }
}

/// Count significand digits in the discovered radix.
fn discover_digits(radix: f64) -> u32 {
    let mut digits = 0u32;
    let mut a = 1.0f64;
    loop {
        digits += 1;
        a = black_box(a * radix);
        let probe = black_box(black_box(a + 1.0) - a);
        if black_box(probe - 1.0) != 0.0 {
            return digits;
        }
    }
}

/// Run the battery.
pub fn run() -> ParanoiaReport {
    let mut findings = Vec::new();
    let mut log = Vec::new();
    let mut check = |ok: bool, severity: Severity, what: &str, log: &mut Vec<String>| {
        if ok {
            log.push(format!("ok: {what}"));
        } else {
            log.push(format!("BAD: {what}"));
            findings.push(Finding { severity, message: what.to_string() });
        }
    };

    let radix = discover_radix();
    log.push(format!("discovered radix = {radix}"));
    let digits = discover_digits(radix);
    log.push(format!("discovered precision = {digits} radix-{radix} digits"));
    check(radix == 2.0, Severity::Defect, "radix is 2", &mut log);
    check(digits == 53, Severity::Defect, "precision is 53 bits", &mut log);

    // Small-integer arithmetic is exact.
    let exact = (2..=10).all(|i| {
        let x = black_box(i as f64);
        black_box(x * x) == (i * i) as f64
            && black_box(black_box(x * x) / x) == x
            && black_box(black_box(x + x) - x) == x
    });
    check(exact, Severity::Failure, "small integer arithmetic exact", &mut log);

    // Guard digit in subtraction: 1 - eps/2 must not collapse to 1 - eps.
    let eps = f64::EPSILON;
    let g = black_box(1.0 - black_box(eps / 2.0));
    check(
        g == 1.0 - eps / 2.0 && g != 1.0 - eps && g < 1.0,
        Severity::SeriousDefect,
        "guard digit on subtraction",
        &mut log,
    );

    // Round-to-nearest-even on addition.
    let one_plus_half_ulp = black_box(1.0 + eps / 2.0);
    check(
        one_plus_half_ulp == 1.0,
        Severity::Defect,
        "halfway add rounds to even (1 + eps/2 == 1)",
        &mut log,
    );
    let odd = black_box(1.0 + eps); // last bit set
    let rounded = black_box(odd + eps / 2.0);
    check(
        rounded == 1.0 + 2.0 * eps,
        Severity::Defect,
        "halfway add rounds to even (odd case rounds up)",
        &mut log,
    );

    // Multiplication/division rounding: x*y within half an ULP.
    let mut mul_ok = true;
    let mut div_ok = true;
    let mut v = 0.1f64;
    for _ in 0..200 {
        v = black_box(v * 1.0000000238418579 + 1e-7);
        let w = black_box(v * 3.0);
        mul_ok &= (w / 3.0 - v).abs() <= v * eps;
        let q = black_box(v / 7.0);
        div_ok &= (q * 7.0 - v).abs() <= v * 2.0 * eps;
    }
    check(mul_ok, Severity::Defect, "multiplication correctly rounded", &mut log);
    check(div_ok, Severity::Defect, "division correctly rounded", &mut log);

    // sqrt of exact squares is exact.
    let sq_ok = (1..=100u32).all(|i| {
        let x = black_box((i * i) as f64);
        black_box(x.sqrt()) == i as f64
    });
    check(sq_ok, Severity::Defect, "sqrt of perfect squares exact", &mut log);

    // Underflow is gradual (denormals exist and are ordered).
    let tiny = black_box(f64::MIN_POSITIVE);
    let denorm = black_box(tiny / 4.0);
    check(
        denorm > 0.0 && denorm < tiny,
        Severity::Defect,
        "gradual underflow (denormals)",
        &mut log,
    );
    check(black_box(denorm * 4.0) == tiny, Severity::Flaw, "denormal scaling exact", &mut log);

    // Overflow saturates to infinity, not garbage.
    let huge = black_box(f64::MAX);
    let inf = black_box(huge * 2.0);
    check(
        inf.is_infinite() && inf > 0.0,
        Severity::SeriousDefect,
        "overflow produces +inf",
        &mut log,
    );

    // Comparisons are a total order on non-NaN values around the probe set.
    // (Probing the comparison operators themselves is the point here, so
    // the tautology lints are silenced deliberately.)
    #[allow(clippy::eq_op, clippy::neg_cmp_op_on_partial_ord)]
    let cmp_ok = {
        let a = black_box(1.0f64);
        let b = black_box(1.0 + eps);
        a < b && !(b < a) && a == a && b != a
    };
    check(cmp_ok, Severity::Failure, "comparison consistency", &mut log);

    // 0 behaviours.
    check(black_box(0.0f64) == black_box(-0.0f64), Severity::Defect, "-0 == +0", &mut log);
    check(black_box(1.0 / f64::INFINITY) == 0.0, Severity::Flaw, "1/inf == 0", &mut log);

    ParanoiaReport { radix, digits, findings, log }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_ieee754_passes() {
        let r = run();
        assert!(r.passed(), "findings: {:?}", r.findings);
        assert!(r.findings.is_empty(), "IEEE 754 doubles should be clean: {:?}", r.findings);
    }

    #[test]
    fn discovers_binary64() {
        let r = run();
        assert_eq!(r.radix, 2.0);
        assert_eq!(r.digits, 53);
    }

    #[test]
    fn log_mentions_every_check() {
        let r = run();
        assert!(r.log.len() >= 14);
        assert!(r
            .log
            .iter()
            .all(|l| l.starts_with("ok:") || l.starts_with("BAD:") || l.starts_with("discovered")));
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Failure > Severity::SeriousDefect);
        assert!(Severity::SeriousDefect > Severity::Defect);
        assert!(Severity::Defect > Severity::Flaw);
    }

    #[test]
    fn passed_tolerates_flaws_only() {
        let mut r = run();
        r.findings.push(Finding { severity: Severity::Flaw, message: "cosmetic".into() });
        assert!(r.passed());
        r.findings.push(Finding { severity: Severity::Defect, message: "real".into() });
        assert!(!r.passed());
    }
}
