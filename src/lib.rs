//! # ncar-sx4 — reproduction of "Architecture and Application: The
//! Performance of the NEC SX-4 on the NCAR Benchmark Suite" (SC'96)
//!
//! This crate re-exports the workspace's public API in one place:
//!
//! - [`sim`] (`sxsim`) — the functional + analytic-timing machine
//!   simulator: the NEC SX-4 and the paper's four comparison machines;
//! - [`suite`] (`ncar-suite`) — the benchmark-suite framework (KTRIES,
//!   constant-volume sweeps, report artifacts);
//! - [`kernels`] (`ncar-kernels`) — PARANOIA, ELEFUNT, COPY/IA/XPOSE,
//!   RFFT/VFFT, RADABS;
//! - [`climate`] (`ccm-proxy`) — the spectral-transform CCM2 proxy;
//! - [`ocean`] (`ocean-models`) — the MOM and POP proxies;
//! - [`os`] (`superux`) — NQS, Resource Blocks, SFS/XMU, channels,
//!   PRODLOAD;
//! - [`others`] (`othersuites`) — LINPACK, STREAM, HINT.
//!
//! ## Quickstart
//!
//! ```
//! use ncar_sx4::sim::{presets, Vm};
//!
//! // A simulated SX-4 processor (the 9.2 ns system the paper benchmarked).
//! let mut vm = Vm::new(presets::sx4_benchmarked());
//! let a = vec![1.0f64; 100_000];
//! let mut b = vec![0.0f64; 100_000];
//! vm.copy(&mut b, &a);
//! assert_eq!(b[0], 1.0);
//! println!("copied 100k doubles in {:.3} simulated microseconds", vm.seconds() * 1e6);
//! ```
//!
//! The `ncar-bench` binary (in `crates/bench`) regenerates every table and
//! figure; see EXPERIMENTS.md for the paper-vs-measured record.

pub use ccm_proxy as climate;
pub use ncar_kernels as kernels;
pub use ncar_suite as suite;
pub use ocean_models as ocean;
pub use othersuites as others;
pub use superux as os;
pub use sxsim as sim;
